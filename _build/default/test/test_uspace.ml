(* Tests for the user-space block cache baseline (lib/uspace). *)

let psz = Hw.Defs.page_size
let checki = Alcotest.(check int)

type rig = { uc : Uspace.User_cache.t; fd : Linux_sim.Readwrite.fd }

let make_rig ?(capacity = 64) ?(file_pages = 256) () =
  let pmem =
    Sdevice.Pmem.create ~capacity_bytes:(Int64.of_int (file_pages * psz)) ()
  in
  let access =
    Sdevice.Access.host_pmem Hw.Costs.default ~entry:Sdevice.Access.From_user pmem
  in
  let fd =
    Linux_sim.Readwrite.open_direct ~costs:Hw.Costs.default ~access
      ~translate:(fun p -> if p < file_pages then Some p else None)
      ~size_pages:file_pages
  in
  let uc =
    Uspace.User_cache.create
      (Uspace.User_cache.default_config ~capacity_pages:capacity)
  in
  Uspace.User_cache.register_file uc ~file_id:1 ~fd;
  { uc; fd }

let in_sim f =
  let eng = Sim.Engine.create () in
  ignore (Sim.Engine.spawn eng ~core:0 f);
  Sim.Engine.run eng

let hit_miss_accounting () =
  let r = make_rig () in
  in_sim (fun () ->
      let dst = Bytes.create 16 in
      Uspace.User_cache.read r.uc ~file_id:1 ~off:0 ~len:16 ~dst;
      checki "first is a miss" 1 (Uspace.User_cache.misses r.uc);
      Uspace.User_cache.read r.uc ~file_id:1 ~off:100 ~len:16 ~dst;
      checki "same block hits" 1 (Uspace.User_cache.hits r.uc);
      checki "one device read" 1 (Linux_sim.Readwrite.reads r.fd))

let write_through_and_cached_copy () =
  let r = make_rig () in
  in_sim (fun () ->
      let block = Bytes.make psz 'W' in
      Uspace.User_cache.write r.uc ~file_id:1 ~off:(3 * psz) ~src:block;
      checki "went to the device" 1 (Linux_sim.Readwrite.writes r.fd);
      let dst = Bytes.create 8 in
      Uspace.User_cache.read r.uc ~file_id:1 ~off:(3 * psz) ~len:8 ~dst;
      Alcotest.(check string) "reads back" "WWWWWWWW" (Bytes.to_string dst))

let capacity_bounded () =
  let r = make_rig ~capacity:32 () in
  in_sim (fun () ->
      let dst = Bytes.create 1 in
      for p = 0 to 127 do
        Uspace.User_cache.read r.uc ~file_id:1 ~off:(p * psz) ~len:1 ~dst
      done;
      Alcotest.(check bool) "resident <= capacity" true
        (Uspace.User_cache.resident r.uc <= 32);
      checki "all were misses (scan)" 128 (Uspace.User_cache.misses r.uc))

let concurrent_misses_are_safe () =
  (* Both threads read the same cold block; data must be correct and the
     cache must end with one resident copy. *)
  let r = make_rig () in
  in_sim (fun () ->
      let src = Bytes.make psz 'C' in
      Uspace.User_cache.write r.uc ~file_id:1 ~off:(7 * psz) ~src;
      Uspace.User_cache.invalidate_file r.uc ~file_id:1);
  let eng = Sim.Engine.create () in
  for core = 0 to 1 do
    ignore
      (Sim.Engine.spawn eng ~core (fun () ->
           let dst = Bytes.create 4 in
           Uspace.User_cache.read r.uc ~file_id:1 ~off:(7 * psz) ~len:4 ~dst;
           Alcotest.(check string) "correct data" "CCCC" (Bytes.to_string dst)))
  done;
  Sim.Engine.run eng

let invalidate_file_clears () =
  let r = make_rig () in
  in_sim (fun () ->
      let dst = Bytes.create 1 in
      Uspace.User_cache.read r.uc ~file_id:1 ~off:0 ~len:1 ~dst;
      Uspace.User_cache.invalidate_file r.uc ~file_id:1;
      checki "empty" 0 (Uspace.User_cache.resident r.uc);
      Uspace.User_cache.read r.uc ~file_id:1 ~off:0 ~len:1 ~dst;
      checki "re-read misses" 2 (Uspace.User_cache.misses r.uc))

let lookups_cost_cycles_even_on_hits () =
  (* The paper's central claim about user-space caches: hits still burn
     CPU.  100 hits must advance the virtual clock substantially. *)
  let r = make_rig () in
  let eng = Sim.Engine.create () in
  let dt = ref 0L in
  ignore
    (Sim.Engine.spawn eng ~core:0 (fun () ->
         let dst = Bytes.create 1 in
         Uspace.User_cache.read r.uc ~file_id:1 ~off:0 ~len:1 ~dst;
         let t0 = Sim.Engine.now_f () in
         for _ = 1 to 100 do
           Uspace.User_cache.read r.uc ~file_id:1 ~off:0 ~len:1 ~dst
         done;
         dt := Int64.sub (Sim.Engine.now_f ()) t0));
  Sim.Engine.run eng;
  Alcotest.(check bool) "hits cost >= 100 x lookup_cost" true
    (!dt >= Int64.mul 100L 2800L)

let () =
  Alcotest.run "uspace"
    [
      ( "user cache",
        [
          Alcotest.test_case "hit/miss accounting" `Quick hit_miss_accounting;
          Alcotest.test_case "write-through" `Quick write_through_and_cached_copy;
          Alcotest.test_case "capacity bounded" `Quick capacity_bounded;
          Alcotest.test_case "concurrent misses" `Quick concurrent_misses_are_safe;
          Alcotest.test_case "invalidate file" `Quick invalidate_file_clears;
          Alcotest.test_case "hits are not free" `Quick lookups_cost_cycles_even_on_hits;
        ] );
    ]
