(* Tests for the blobstore and file namespace (lib/blobstore). *)

let checki = Alcotest.(check int)

let mk () = Blobstore.Store.create ~capacity_pages:4096 ~cluster_pages:64 ()

let create_and_translate () =
  let s = mk () in
  let b = Blobstore.Store.create_blob s ~name:"a" ~pages:100 () in
  checki "pages" 100 (Blobstore.Store.blob_pages b);
  Alcotest.(check (option string)) "name" (Some "a") (Blobstore.Store.blob_name b);
  (* 100 pages -> 2 clusters of 64 *)
  checki "free pages" (4096 - 128) (Blobstore.Store.free_pages s);
  (* translation is monotone within a cluster *)
  checki "page 0" (Blobstore.Store.device_page b 0 + 1) (Blobstore.Store.device_page b 1);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Blobstore.device_page: out of range") (fun () ->
      ignore (Blobstore.Store.device_page b 100))

let translation_unique () =
  let s = mk () in
  let b1 = Blobstore.Store.create_blob s ~pages:64 () in
  let b2 = Blobstore.Store.create_blob s ~pages:64 () in
  let pages = Hashtbl.create 128 in
  List.iter
    (fun b ->
      for p = 0 to 63 do
        let dev = Blobstore.Store.device_page b p in
        Alcotest.(check bool) "no overlap" false (Hashtbl.mem pages dev);
        Hashtbl.replace pages dev ()
      done)
    [ b1; b2 ]

let resize_grow_shrink () =
  let s = mk () in
  let b = Blobstore.Store.create_blob s ~pages:64 () in
  let dev0 = Blobstore.Store.device_page b 0 in
  Blobstore.Store.resize s b ~pages:200;
  checki "grown" 200 (Blobstore.Store.blob_pages b);
  checki "page 0 stable across grow" dev0 (Blobstore.Store.device_page b 0);
  Blobstore.Store.resize s b ~pages:64;
  checki "shrunk" 64 (Blobstore.Store.blob_pages b);
  checki "clusters returned" (4096 - 64) (Blobstore.Store.free_pages s)

let delete_frees () =
  let s = mk () in
  let b = Blobstore.Store.create_blob s ~pages:128 () in
  let id = Blobstore.Store.blob_id b in
  Blobstore.Store.delete s b;
  checki "all free" 4096 (Blobstore.Store.free_pages s);
  checki "no blobs" 0 (Blobstore.Store.blob_count s);
  Alcotest.check_raises "open deleted" Not_found (fun () ->
      ignore (Blobstore.Store.open_blob s id))

let out_of_space () =
  let s = mk () in
  Alcotest.check_raises "full" (Failure "Blobstore: out of space") (fun () ->
      ignore (Blobstore.Store.create_blob s ~pages:5000 ()))

let xattrs () =
  let s = mk () in
  let b = Blobstore.Store.create_blob s ~pages:64 () in
  Alcotest.(check (option string)) "absent" None (Blobstore.Store.get_xattr b "k");
  Blobstore.Store.set_xattr b "k" "v";
  Alcotest.(check (option string)) "present" (Some "v") (Blobstore.Store.get_xattr b "k")

let contiguous_runs () =
  let s = mk () in
  let b = Blobstore.Store.create_blob s ~pages:128 () in
  (* freshly allocated clusters are consecutive, so the run spans both *)
  Alcotest.(check bool) "long run from 0" true (Blobstore.Store.contiguous_run b 0 >= 64);
  checki "tail run" 1 (Blobstore.Store.contiguous_run b 127)

let alloc_reuse_prop =
  QCheck.Test.make ~name:"blobstore never double-allocates clusters" ~count:50
    QCheck.(list (int_range 1 300))
    (fun sizes ->
      let s = mk () in
      let blobs = ref [] in
      (try
         List.iteri
           (fun i pages ->
             let b = Blobstore.Store.create_blob s ~pages () in
             if i mod 3 = 0 then Blobstore.Store.delete s b
             else blobs := b :: !blobs)
           sizes
       with Failure _ -> ());
      let seen = Hashtbl.create 256 in
      List.for_all
        (fun b ->
          let ok = ref true in
          for p = 0 to Blobstore.Store.blob_pages b - 1 do
            let dev = Blobstore.Store.device_page b p in
            if Hashtbl.mem seen dev then ok := false;
            Hashtbl.replace seen dev ()
          done;
          !ok)
        !blobs)

(* ---- File namespace ---- *)

let file_ns_basic () =
  let s = mk () in
  let ns = Blobstore.File_ns.create s in
  let f1 = Blobstore.File_ns.open_file ns "/data/a.sst" ~size_pages:64 in
  let f2 = Blobstore.File_ns.open_file ns "/data/a.sst" ~size_pages:32 in
  checki "same blob on reopen" (Blobstore.Store.blob_id f1) (Blobstore.Store.blob_id f2);
  let f3 = Blobstore.File_ns.open_file ns "/data/a.sst" ~size_pages:128 in
  checki "grown on bigger open" 128 (Blobstore.Store.blob_pages f3);
  checki "two names max one file" 1 (List.length (Blobstore.File_ns.files ns));
  Alcotest.(check bool) "unlink" true (Blobstore.File_ns.unlink ns "/data/a.sst");
  Alcotest.(check bool) "unlink twice" false (Blobstore.File_ns.unlink ns "/data/a.sst");
  Alcotest.(check bool) "lookup gone" true (Blobstore.File_ns.lookup ns "/data/a.sst" = None)

(* ---- BlobFS ---- *)

let in_sim f =
  let eng = Sim.Engine.create () in
  ignore (Sim.Engine.spawn eng ~core:0 f);
  Sim.Engine.run eng;
  eng

let blobfs_rig () =
  let store = Blobstore.Store.create ~capacity_pages:4096 () in
  let nvme = Sdevice.Nvme.create () in
  let access = Sdevice.Access.spdk_nvme Hw.Costs.default nvme in
  (Blobstore.Blobfs.create ~store ~access ~cache_pages:16 (), nvme)

let blobfs_rw_and_hits () =
  let fs, _ = blobfs_rig () in
  ignore
    (in_sim (fun () ->
         let f = Blobstore.Blobfs.open_file fs ~name:"a" ~size_pages:64 in
         Blobstore.Blobfs.write f ~off:5000 ~src:(Bytes.of_string "buffered!");
         let dst = Bytes.create 9 in
         Blobstore.Blobfs.read f ~off:5000 ~len:9 ~dst;
         Alcotest.(check string) "read back" "buffered!" (Bytes.to_string dst);
         Alcotest.(check bool) "second access hit" true
           (Blobstore.Blobfs.cache_hits fs > 0);
         Alcotest.(check bool) "still dirty (buffered)" true
           (Blobstore.Blobfs.dirty_blocks fs > 0)))

let blobfs_fsync_and_eviction_persist () =
  let fs, nvme = blobfs_rig () in
  ignore
    (in_sim (fun () ->
         let f = Blobstore.Blobfs.open_file fs ~name:"b" ~size_pages:64 in
         (* dirty more blocks than the 16-slot cache: evictions write back *)
         for p = 0 to 39 do
           Blobstore.Blobfs.write f ~off:(p * 4096)
             ~src:(Bytes.make 16 (Char.chr (65 + (p mod 26))))
         done;
         Blobstore.Blobfs.fsync f;
         checki "clean after fsync" 0 (Blobstore.Blobfs.dirty_blocks fs);
         (* re-read everything: must come back intact from the device *)
         for p = 0 to 39 do
           let dst = Bytes.create 1 in
           Blobstore.Blobfs.read f ~off:(p * 4096) ~len:1 ~dst;
           Alcotest.(check char) (Printf.sprintf "block %d" p)
             (Char.chr (65 + (p mod 26)))
             (Bytes.get dst 0)
         done));
  Alcotest.(check bool) "device saw writes" true (Sdevice.Block_dev.writes nvme > 0)

let blobfs_hits_cost_cpu () =
  let fs, _ = blobfs_rig () in
  let eng = Sim.Engine.create () in
  let dt = ref 0L in
  ignore
    (Sim.Engine.spawn eng ~core:0 (fun () ->
         let f = Blobstore.Blobfs.open_file fs ~name:"c" ~size_pages:8 in
         let dst = Bytes.create 1 in
         Blobstore.Blobfs.read f ~off:0 ~len:1 ~dst;
         let t0 = Sim.Engine.now_f () in
         for _ = 1 to 50 do
           Blobstore.Blobfs.read f ~off:0 ~len:1 ~dst
         done;
         dt := Int64.sub (Sim.Engine.now_f ()) t0));
  Sim.Engine.run eng;
  (* the paper's point: buffered-FS hits are never free *)
  Alcotest.(check bool) "hits burn cycles" true (!dt >= Int64.mul 50L 1200L)

let () =
  Alcotest.run "blobstore"
    [
      ( "store",
        [
          Alcotest.test_case "create and translate" `Quick create_and_translate;
          Alcotest.test_case "unique translation" `Quick translation_unique;
          Alcotest.test_case "resize" `Quick resize_grow_shrink;
          Alcotest.test_case "delete frees" `Quick delete_frees;
          Alcotest.test_case "out of space" `Quick out_of_space;
          Alcotest.test_case "xattrs" `Quick xattrs;
          Alcotest.test_case "contiguous runs" `Quick contiguous_runs;
          QCheck_alcotest.to_alcotest alloc_reuse_prop;
        ] );
      ("file_ns", [ Alcotest.test_case "open/unlink" `Quick file_ns_basic ]);
      ( "blobfs",
        [
          Alcotest.test_case "buffered rw" `Quick blobfs_rw_and_hits;
          Alcotest.test_case "fsync + eviction persistence" `Quick
            blobfs_fsync_and_eviction_persist;
          Alcotest.test_case "hits are not free" `Quick blobfs_hits_cost_cpu;
        ] );
    ]
