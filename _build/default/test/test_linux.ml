(* Tests for the Linux baseline (lib/linux_sim): kernel page cache,
   mmap path, and read/write syscalls. *)

let psz = Hw.Defs.page_size
let checki = Alcotest.(check int)

type rig = { msys : Linux_sim.Mmap_sys.t; file : Linux_sim.Mmap_sys.file }

let make_rig ?(frames = 32) ?(readahead = 1) ?(file_pages = 256) () =
  let cfg =
    {
      Linux_sim.Mmap_sys.cache =
        { (Linux_sim.Page_cache.default_config ~frames) with readahead };
      vma_rb_cost_multiplier = 1;
    }
  in
  let msys = Linux_sim.Mmap_sys.create cfg in
  let pmem =
    Sdevice.Pmem.create ~capacity_bytes:(Int64.of_int (file_pages * psz)) ()
  in
  let access =
    Sdevice.Access.host_pmem (Linux_sim.Mmap_sys.costs msys)
      ~entry:Sdevice.Access.In_kernel pmem
  in
  let file =
    Linux_sim.Mmap_sys.attach_file msys ~name:"t" ~access
      ~translate:(fun p -> if p < file_pages then Some p else None)
      ~size_pages:file_pages
  in
  { msys; file }

let in_sim f =
  let eng = Sim.Engine.create () in
  ignore (Sim.Engine.spawn eng ~core:0 f);
  Sim.Engine.run eng;
  eng

let mmap_rw_roundtrip () =
  let r = make_rig ~frames:16 () in
  ignore
    (in_sim (fun () ->
         Linux_sim.Mmap_sys.enter_thread r.msys;
         let region = Linux_sim.Mmap_sys.mmap r.msys r.file ~npages:100 () in
         for p = 0 to 99 do
           Linux_sim.Mmap_sys.write r.msys region ~off:(p * psz)
             ~src:(Bytes.make 8 (Char.chr (48 + (p mod 10))))
         done;
         for p = 0 to 99 do
           let dst = Bytes.create 8 in
           Linux_sim.Mmap_sys.read r.msys region ~off:(p * psz) ~len:8 ~dst;
           Alcotest.(check char) (Printf.sprintf "page %d" p)
             (Char.chr (48 + (p mod 10)))
             (Bytes.get dst 0)
         done;
         (* 100 pages through 16 frames: reclaim ran *)
         Alcotest.(check bool) "reclaimed" true
           (Linux_sim.Page_cache.evictions (Linux_sim.Mmap_sys.page_cache r.msys) > 0)))

let readahead_fills_cluster () =
  let r = make_rig ~frames:64 ~readahead:8 () in
  ignore
    (in_sim (fun () ->
         Linux_sim.Mmap_sys.enter_thread r.msys;
         let region = Linux_sim.Mmap_sys.mmap r.msys r.file ~npages:64 () in
         let pc = Linux_sim.Mmap_sys.page_cache r.msys in
         Linux_sim.Mmap_sys.touch r.msys region ~page:0 ~write:false;
         checki "one io for the window" 1 (Linux_sim.Page_cache.read_ios pc);
         Alcotest.(check bool) "neighbour resident" true
           (Linux_sim.Page_cache.is_resident pc
              ~key:(Mcache.Pagekey.make ~file:(Linux_sim.Mmap_sys.file_id r.file) ~page:7));
         (* the neighbour faults as a minor fault: no new I/O *)
         Linux_sim.Mmap_sys.touch r.msys region ~page:7 ~write:false;
         checki "still one io" 1 (Linux_sim.Page_cache.read_ios pc)))

let tree_lock_contends () =
  let r = make_rig ~frames:512 ~file_pages:2048 () in
  let eng = Sim.Engine.create () in
  let region = ref None in
  ignore
    (Sim.Engine.spawn eng ~core:0 (fun () ->
         Linux_sim.Mmap_sys.enter_thread r.msys;
         region := Some (Linux_sim.Mmap_sys.mmap r.msys r.file ~npages:2048 ())));
  Sim.Engine.run eng;
  for t = 0 to 7 do
    ignore
      (Sim.Engine.spawn eng ~core:t (fun () ->
           Linux_sim.Mmap_sys.enter_thread r.msys;
           for i = 0 to 127 do
             Linux_sim.Mmap_sys.touch r.msys (Option.get !region)
               ~page:((t * 128) + i) ~write:false
           done))
  done;
  Sim.Engine.run eng;
  Alcotest.(check bool) "tree_lock contention recorded" true
    (Linux_sim.Page_cache.tree_lock_contended (Linux_sim.Mmap_sys.page_cache r.msys)
    > 0L)

let msync_cleans () =
  let r = make_rig () in
  ignore
    (in_sim (fun () ->
         Linux_sim.Mmap_sys.enter_thread r.msys;
         let region = Linux_sim.Mmap_sys.mmap r.msys r.file ~npages:8 () in
         Linux_sim.Mmap_sys.write r.msys region ~off:0 ~src:(Bytes.make 16 'd');
         let pc = Linux_sim.Mmap_sys.page_cache r.msys in
         Alcotest.(check bool) "dirty" true (Linux_sim.Page_cache.dirty_pages pc > 0);
         Linux_sim.Mmap_sys.msync r.msys region;
         checki "clean" 0 (Linux_sim.Page_cache.dirty_pages pc);
         Alcotest.(check bool) "written" true
           (Linux_sim.Page_cache.writeback_ios pc > 0)))

let background_flusher_cleans () =
  let r = make_rig ~frames:128 ~file_pages:256 () in
  let eng = Sim.Engine.create () in
  let pc = Linux_sim.Mmap_sys.page_cache r.msys in
  Linux_sim.Page_cache.spawn_flusher pc ~eng ~hi:16 ~lo:4 ~core:1 ();
  ignore
    (Sim.Engine.spawn eng ~core:0 (fun () ->
         Linux_sim.Mmap_sys.enter_thread r.msys;
         let region = Linux_sim.Mmap_sys.mmap r.msys r.file ~npages:64 () in
         for p = 0 to 63 do
           Linux_sim.Mmap_sys.write r.msys region ~off:(p * psz)
             ~src:(Bytes.make 8 'f')
         done));
  Sim.Engine.run eng;
  Alcotest.(check bool)
    (Printf.sprintf "flushed below lo (%d dirty)"
       (Linux_sim.Page_cache.dirty_pages pc))
    true
    (Linux_sim.Page_cache.dirty_pages pc <= 4);
  Alcotest.(check bool) "writebacks happened" true
    (Linux_sim.Page_cache.writeback_ios pc > 0);
  Linux_sim.Page_cache.stop_flusher pc;
  Sim.Engine.run eng

let linux_fault_pays_ring3_trap () =
  let r = make_rig () in
  let eng =
    in_sim (fun () ->
        Linux_sim.Mmap_sys.enter_thread r.msys;
        let region = Linux_sim.Mmap_sys.mmap r.msys r.file ~npages:1 () in
        Linux_sim.Mmap_sys.touch r.msys region ~page:0 ~write:false)
  in
  ignore eng;
  checki "one fault" 1 (Linux_sim.Mmap_sys.faults r.msys)

(* ---- Readwrite (direct / buffered syscalls) ---- *)

let direct_pread_pwrite () =
  let pmem = Sdevice.Pmem.create () in
  let access =
    Sdevice.Access.host_pmem Hw.Costs.default ~entry:Sdevice.Access.From_user pmem
  in
  let fd =
    Linux_sim.Readwrite.open_direct ~costs:Hw.Costs.default ~access
      ~translate:(fun p -> if p < 64 then Some (p + 10) else None)
      ~size_pages:64
  in
  ignore
    (in_sim (fun () ->
         let src = Bytes.make (2 * psz) 'D' in
         Linux_sim.Readwrite.pwrite fd ~off:(4 * psz) ~src;
         (* unaligned reads are fine (kernel rounds to pages) *)
         let dst = Bytes.create 100 in
         Linux_sim.Readwrite.pread fd ~off:((4 * psz) + 50) ~len:100 ~dst;
         Alcotest.(check string) "data" (String.make 100 'D') (Bytes.to_string dst)));
  checki "write counted" 1 (Linux_sim.Readwrite.writes fd);
  Alcotest.check_raises "O_DIRECT alignment"
    (Invalid_argument "Readwrite.pwrite: O_DIRECT requires page alignment") (fun () ->
      ignore
        (in_sim (fun () ->
             Linux_sim.Readwrite.pwrite fd ~off:5 ~src:(Bytes.create psz))))

let buffered_read_through_page_cache () =
  let r = make_rig ~frames:32 () in
  let pc = Linux_sim.Mmap_sys.page_cache r.msys in
  let fd =
    Linux_sim.Readwrite.open_buffered ~pc
      ~file_id:(Linux_sim.Mmap_sys.file_id r.file) ~size_pages:256
  in
  ignore
    (in_sim (fun () ->
         let dst = Bytes.create 10 in
         Linux_sim.Readwrite.pread fd ~off:0 ~len:10 ~dst;
         checki "filled via cache" 1 (Linux_sim.Page_cache.misses pc);
         Linux_sim.Readwrite.pread fd ~off:100 ~len:10 ~dst;
         checki "second read hits" 1 (Linux_sim.Page_cache.misses pc)))

let buffered_write_marks_dirty () =
  let r = make_rig ~frames:32 () in
  let pc = Linux_sim.Mmap_sys.page_cache r.msys in
  let fd =
    Linux_sim.Readwrite.open_buffered ~pc
      ~file_id:(Linux_sim.Mmap_sys.file_id r.file) ~size_pages:256
  in
  ignore
    (in_sim (fun () ->
         Linux_sim.Readwrite.pwrite fd ~off:123 ~src:(Bytes.of_string "buffered");
         Alcotest.(check bool) "dirty tagged" true
           (Linux_sim.Page_cache.dirty_pages pc > 0)))

let () =
  Alcotest.run "linux_sim"
    [
      ( "mmap",
        [
          Alcotest.test_case "rw roundtrip with reclaim" `Quick mmap_rw_roundtrip;
          Alcotest.test_case "fault readahead" `Quick readahead_fills_cluster;
          Alcotest.test_case "tree_lock contention" `Quick tree_lock_contends;
          Alcotest.test_case "msync" `Quick msync_cleans;
          Alcotest.test_case "background flusher" `Quick background_flusher_cleans;
          Alcotest.test_case "fault counted" `Quick linux_fault_pays_ring3_trap;
        ] );
      ( "readwrite",
        [
          Alcotest.test_case "direct pread/pwrite" `Quick direct_pread_pwrite;
          Alcotest.test_case "buffered read" `Quick buffered_read_through_page_cache;
          Alcotest.test_case "buffered write dirties" `Quick buffered_write_marks_dirty;
        ] );
    ]
