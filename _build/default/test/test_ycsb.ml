(* Tests for the YCSB workload generator and runner (lib/ycsb). *)

let checki = Alcotest.(check int)

(* ---- Distributions ---- *)

let uniform_in_bounds =
  QCheck.Test.make ~name:"uniform draws stay in bounds" ~count:200
    QCheck.(pair (int_range 1 10000) small_int)
    (fun (items, seed) ->
      let d = Ycsb.Zipfian.uniform (Sim.Rng.create seed) ~items in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Ycsb.Zipfian.next d in
        if v < 0 || v >= items then ok := false
      done;
      !ok)

let zipf_in_bounds =
  QCheck.Test.make ~name:"zipfian draws stay in bounds" ~count:100
    QCheck.(pair (int_range 2 10000) small_int)
    (fun (items, seed) ->
      let d = Ycsb.Zipfian.zipfian (Sim.Rng.create seed) ~items in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Ycsb.Zipfian.next d in
        if v < 0 || v >= items then ok := false
      done;
      !ok)

let zipf_is_skewed () =
  (* The most popular key should receive far more than 1/n of the draws. *)
  let items = 10000 and draws = 20000 in
  let d = Ycsb.Zipfian.zipfian (Sim.Rng.create 1) ~items in
  let counts = Hashtbl.create 1024 in
  for _ = 1 to draws do
    let v = Ycsb.Zipfian.next d in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let max_count = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  Alcotest.(check bool)
    (Printf.sprintf "hottest key drawn %d times (uniform would be ~2)" max_count)
    true
    (max_count > 100)

let uniform_is_not_skewed () =
  let items = 100 and draws = 20000 in
  let d = Ycsb.Zipfian.uniform (Sim.Rng.create 1) ~items in
  let counts = Array.make items 0 in
  for _ = 1 to draws do
    let v = Ycsb.Zipfian.next d in
    counts.(v) <- counts.(v) + 1
  done;
  let max_c = Array.fold_left max 0 counts in
  Alcotest.(check bool) "roughly even" true (max_c < 2 * (draws / items) + 50)

let latest_favours_recent () =
  let items = 1000 in
  let d = Ycsb.Zipfian.latest (Sim.Rng.create 1) ~items in
  let recent = ref 0 in
  for _ = 1 to 5000 do
    if Ycsb.Zipfian.next d > items - 100 then incr recent
  done;
  (* the newest 10% of keys get the bulk of the traffic *)
  Alcotest.(check bool) (Printf.sprintf "recent keys hot (%d/5000)" !recent) true
    (!recent > 2500)

let set_items_extends_range () =
  let d = Ycsb.Zipfian.latest (Sim.Rng.create 1) ~items:10 in
  Ycsb.Zipfian.set_items d 1000;
  checki "items grown" 1000 (Ycsb.Zipfian.items d);
  let saw_big = ref false in
  for _ = 1 to 200 do
    if Ycsb.Zipfian.next d >= 10 then saw_big := true
  done;
  Alcotest.(check bool) "new keys drawable" true !saw_big

(* ---- Workloads (Table 1) ---- *)

let workload_mixes_sum_to_one () =
  List.iter
    (fun (w : Ycsb.Workload.t) ->
      let sum =
        w.Ycsb.Workload.read +. w.Ycsb.Workload.update +. w.Ycsb.Workload.insert
        +. w.Ycsb.Workload.scan +. w.Ycsb.Workload.rmw
      in
      Alcotest.(check (float 1e-9)) (w.Ycsb.Workload.name ^ " sums to 1") 1.0 sum)
    Ycsb.Workload.all

let workload_table1_definitions () =
  let open Ycsb.Workload in
  Alcotest.(check (float 0.)) "A reads" 0.5 a.read;
  Alcotest.(check (float 0.)) "A updates" 0.5 a.update;
  Alcotest.(check (float 0.)) "B reads" 0.95 b.read;
  Alcotest.(check (float 0.)) "C reads" 1.0 c.read;
  Alcotest.(check (float 0.)) "D inserts" 0.05 d.insert;
  Alcotest.(check bool) "D latest" true (d.dist = Latest);
  Alcotest.(check (float 0.)) "E scans" 0.95 e.scan;
  Alcotest.(check (float 0.)) "F rmw" 0.5 f.rmw;
  Alcotest.(check bool) "lookup by name" true (by_name "e" = Some e);
  Alcotest.(check bool) "unknown name" true (by_name "z" = None)

(* ---- Runner ---- *)

let key_format () =
  Alcotest.(check string) "padded" "user0000000000000042" (Ycsb.Runner.key_of 42);
  checki "fixed width" 20 (String.length (Ycsb.Runner.key_of 123456))

let runner_drives_kv () =
  let eng = Sim.Engine.create () in
  let table : (string, string) Hashtbl.t = Hashtbl.create 64 in
  for i = 0 to 99 do
    Hashtbl.replace table (Ycsb.Runner.key_of i) "init"
  done;
  let reads = ref 0 and writes = ref 0 and scans = ref 0 in
  let kv =
    {
      Ycsb.Runner.kv_read =
        (fun k ->
          incr reads;
          Sim.Engine.delay 1000L;
          Hashtbl.find_opt table k);
      kv_update =
        (fun k v ->
          incr writes;
          Sim.Engine.delay 1500L;
          Hashtbl.replace table k v);
      kv_insert =
        (fun k v ->
          incr writes;
          Hashtbl.replace table k v);
      kv_scan =
        (fun ~start:_ ~n:_ ->
          incr scans;
          []);
      kv_rmw = (fun k f -> Hashtbl.replace table k (f (Option.value ~default:"" (Hashtbl.find_opt table k))));
    }
  in
  let r =
    Ycsb.Runner.run ~eng ~threads:4 ~ops_per_thread:100 ~workload:Ycsb.Workload.a
      ~record_count:100 ~value_bytes:16 ~kv ()
  in
  checki "total ops" 400 r.Ycsb.Runner.ops;
  checki "latencies recorded" 400 (Stats.Histogram.count r.Ycsb.Runner.latency);
  Alcotest.(check bool) "mix has reads and updates" true (!reads > 100 && !writes > 100);
  Alcotest.(check bool) "throughput positive" true (r.Ycsb.Runner.throughput_ops_s > 0.);
  checki "per-thread contexts" 4 (List.length r.Ycsb.Runner.thread_ctxs)

let runner_load_phase () =
  let eng = Sim.Engine.create () in
  let n = ref 0 and finished = ref false in
  Ycsb.Runner.load ~eng ~record_count:250 ~value_bytes:8
    ~insert:(fun _ _ -> incr n)
    ~finish:(fun () -> finished := true)
    ();
  checki "all inserted" 250 !n;
  Alcotest.(check bool) "finish ran" true !finished

let () =
  Alcotest.run "ycsb"
    [
      ( "distributions",
        [
          QCheck_alcotest.to_alcotest uniform_in_bounds;
          QCheck_alcotest.to_alcotest zipf_in_bounds;
          Alcotest.test_case "zipf skew" `Quick zipf_is_skewed;
          Alcotest.test_case "uniform flat" `Quick uniform_is_not_skewed;
          Alcotest.test_case "latest recency" `Quick latest_favours_recent;
          Alcotest.test_case "set_items" `Quick set_items_extends_range;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "mixes sum to 1" `Quick workload_mixes_sum_to_one;
          Alcotest.test_case "table 1 definitions" `Quick workload_table1_definitions;
        ] );
      ( "runner",
        [
          Alcotest.test_case "key format" `Quick key_format;
          Alcotest.test_case "drives a kv" `Quick runner_drives_kv;
          Alcotest.test_case "load phase" `Quick runner_load_phase;
        ] );
    ]
