(* Tests for the Aquila library OS (lib/core): VMA management, syscall
   interception, and the Context application surface. *)

let psz = Hw.Defs.page_size
let c = Hw.Costs.default
let checki = Alcotest.(check int)

(* ---- Vma ---- *)

let vma_insert_lookup () =
  let v = Aquila.Vma.create c in
  let area npages vstart =
    { Aquila.Vma.vstart; npages; file_id = 1; file_page0 = 0; advice = Aquila.Vma.Normal }
  in
  ignore (Aquila.Vma.insert v (area 10 100));
  ignore (Aquila.Vma.insert v (area 5 200));
  checki "count" 2 (Aquila.Vma.count v);
  let hit vpn = fst (Aquila.Vma.lookup v ~vpn) in
  (match hit 105 with
  | Some a -> checki "found first area" 100 a.Aquila.Vma.vstart
  | None -> Alcotest.fail "lookup inside area failed");
  Alcotest.(check bool) "miss below" true (hit 99 = None);
  Alcotest.(check bool) "miss in gap" true (hit 110 = None);
  Alcotest.(check bool) "last page of area" true (hit 204 <> None);
  Alcotest.(check bool) "past end" true (hit 205 = None)

let vma_rejects_overlap () =
  let v = Aquila.Vma.create c in
  let area vstart npages =
    { Aquila.Vma.vstart; npages; file_id = 1; file_page0 = 0; advice = Aquila.Vma.Normal }
  in
  ignore (Aquila.Vma.insert v (area 100 10));
  Alcotest.check_raises "overlap from below" (Invalid_argument "Vma.insert: overlap")
    (fun () -> ignore (Aquila.Vma.insert v (area 95 6)));
  Alcotest.check_raises "contained" (Invalid_argument "Vma.insert: overlap") (fun () ->
      ignore (Aquila.Vma.insert v (area 105 2)))

let vma_remove () =
  let v = Aquila.Vma.create c in
  ignore
    (Aquila.Vma.insert v
       { Aquila.Vma.vstart = 50; npages = 4; file_id = 2; file_page0 = 0;
         advice = Aquila.Vma.Normal });
  let removed, _ = Aquila.Vma.remove v ~vstart:50 in
  Alcotest.(check bool) "removed" true (removed <> None);
  Alcotest.(check bool) "gone" true (fst (Aquila.Vma.lookup v ~vpn:51) = None)

(* ---- Syscalls ---- *)

let syscall_counters () =
  let eng = Sim.Engine.create () in
  let s = Aquila.Syscalls.create () in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Aquila.Syscalls.intercepted s c "mmap";
         Aquila.Syscalls.intercepted s c "msync";
         Aquila.Syscalls.forwarded s c Hw.Domain_x.Nonroot_ring0 "open"));
  Sim.Engine.run eng;
  checki "intercepted" 2 (Aquila.Syscalls.intercepted_count s);
  checki "forwarded" 1 (Aquila.Syscalls.forwarded_count s);
  Alcotest.(check bool) "by name" true
    (List.mem ("mmap", 1) (Aquila.Syscalls.by_name s));
  (* intercepted calls avoid the vmcall: the clock advanced by far less
     than one vmcall per intercepted call *)
  Alcotest.(check bool) "interception cheap" true
    (Sim.Engine.now eng < Int64.mul 2L c.Hw.Costs.vmcall_roundtrip)

(* ---- Context ---- *)

type rig = { ctx : Aquila.Context.t; file : Aquila.Context.file }

let make_rig ?(frames = 32) ?(max_frames = 64) ?(file_pages = 256)
    ?(domain = Hw.Domain_x.Nonroot_ring0) () =
  let cfg0 = Aquila.Context.default_config ~cache_frames:frames in
  let cfg =
    {
      cfg0 with
      Aquila.Context.domain;
      cache = { cfg0.Aquila.Context.cache with Mcache.Dram_cache.max_frames };
    }
  in
  let ctx = Aquila.Context.create cfg in
  let pmem =
    Sdevice.Pmem.create ~capacity_bytes:(Int64.of_int (file_pages * psz)) ()
  in
  let access = Sdevice.Access.dax_pmem (Aquila.Context.costs ctx) pmem in
  let file =
    Aquila.Context.attach_file ctx ~name:"t.dat" ~access
      ~translate:(fun p -> if p < file_pages then Some p else None)
      ~size_pages:file_pages
  in
  { ctx; file }

let in_sim f =
  let eng = Sim.Engine.create () in
  ignore (Sim.Engine.spawn eng ~core:0 f);
  Sim.Engine.run eng;
  eng

let rw_roundtrip_across_evictions () =
  (* 32-frame cache, 200 pages of data written then read back: integrity
     must survive eviction, write-back and refetch. *)
  let r = make_rig ~frames:32 () in
  ignore
    (in_sim (fun () ->
         Aquila.Context.enter_thread r.ctx;
         let region = Aquila.Context.mmap r.ctx r.file ~npages:200 () in
         for p = 0 to 199 do
           let src = Bytes.make 32 (Char.chr (33 + (p mod 90))) in
           Aquila.Context.write r.ctx region ~off:(p * psz) ~src
         done;
         for p = 0 to 199 do
           let dst = Bytes.create 32 in
           Aquila.Context.read r.ctx region ~off:(p * psz) ~len:32 ~dst;
           Alcotest.(check char)
             (Printf.sprintf "page %d" p)
             (Char.chr (33 + (p mod 90)))
             (Bytes.get dst 0)
         done;
         Alcotest.(check bool) "evictions occurred" true
           (Mcache.Dram_cache.evictions (Aquila.Context.cache r.ctx) > 0)))

let hits_are_free () =
  let r = make_rig () in
  ignore
    (in_sim (fun () ->
         Aquila.Context.enter_thread r.ctx;
         let region = Aquila.Context.mmap r.ctx r.file ~npages:8 () in
         Aquila.Context.touch r.ctx region ~page:0 ~write:false;
         let f0 = Aquila.Context.faults r.ctx in
         let t0 = Sim.Engine.now_f () in
         for _ = 1 to 100 do
           Aquila.Context.touch r.ctx region ~page:0 ~write:false
         done;
         let dt = Int64.sub (Sim.Engine.now_f ()) t0 in
         checki "no more faults" f0 (Aquila.Context.faults r.ctx);
         (* 100 hits cost at most a few cycles of TLB noise *)
         Alcotest.(check bool) "hits ~free" true (dt < 500L)))

let write_after_read_faults_again () =
  let r = make_rig () in
  ignore
    (in_sim (fun () ->
         Aquila.Context.enter_thread r.ctx;
         let region = Aquila.Context.mmap r.ctx r.file ~npages:4 () in
         Aquila.Context.touch r.ctx region ~page:1 ~write:false;
         let f_after_read = Aquila.Context.faults r.ctx in
         (* the read fault mapped it read-only; the store faults again to
            mark the page dirty (paper's dirty tracking) *)
         Aquila.Context.touch r.ctx region ~page:1 ~write:true;
         checki "write fault taken" (f_after_read + 1) (Aquila.Context.faults r.ctx);
         checki "dirty" 1 (Mcache.Dram_cache.dirty_pages (Aquila.Context.cache r.ctx));
         (* further stores are free *)
         Aquila.Context.touch r.ctx region ~page:1 ~write:true;
         checki "no third fault" (f_after_read + 1) (Aquila.Context.faults r.ctx)))

let munmap_keeps_cache () =
  let r = make_rig () in
  ignore
    (in_sim (fun () ->
         Aquila.Context.enter_thread r.ctx;
         let region = Aquila.Context.mmap r.ctx r.file ~npages:4 () in
         Aquila.Context.touch r.ctx region ~page:2 ~write:false;
         let misses0 = Mcache.Dram_cache.misses (Aquila.Context.cache r.ctx) in
         Aquila.Context.munmap r.ctx region;
         (* remap: the page faults again but hits the DRAM cache *)
         let region2 = Aquila.Context.mmap r.ctx r.file ~npages:4 () in
         Aquila.Context.touch r.ctx region2 ~page:2 ~write:false;
         checki "no new device read" misses0
           (Mcache.Dram_cache.misses (Aquila.Context.cache r.ctx));
         Alcotest.(check bool) "fault-hit counted" true
           (Mcache.Dram_cache.fault_hits (Aquila.Context.cache r.ctx) > 0)))

let msync_persists () =
  let r = make_rig () in
  ignore
    (in_sim (fun () ->
         Aquila.Context.enter_thread r.ctx;
         let region = Aquila.Context.mmap r.ctx r.file ~npages:4 () in
         Aquila.Context.write r.ctx region ~off:100 ~src:(Bytes.of_string "durable");
         Aquila.Context.msync r.ctx region;
         checki "clean after msync" 0
           (Mcache.Dram_cache.dirty_pages (Aquila.Context.cache r.ctx));
         Alcotest.(check bool) "write-back happened" true
           (Mcache.Dram_cache.writeback_pages (Aquila.Context.cache r.ctx) > 0)))

let madvise_controls_readahead () =
  let r = make_rig ~frames:64 () in
  ignore
    (in_sim (fun () ->
         Aquila.Context.enter_thread r.ctx;
         let region = Aquila.Context.mmap r.ctx r.file ~npages:100 () in
         let cache = Aquila.Context.cache r.ctx in
         Aquila.Context.madvise r.ctx region Aquila.Vma.Random;
         Aquila.Context.touch r.ctx region ~page:0 ~write:false;
         checki "random: one page" 1 (Mcache.Dram_cache.read_pages cache);
         Aquila.Context.madvise r.ctx region Aquila.Vma.Sequential;
         Aquila.Context.touch r.ctx region ~page:50 ~write:false;
         Alcotest.(check bool) "sequential: window fetched" true
           (Mcache.Dram_cache.read_pages cache > 16)))

let mmap_bounds () =
  let r = make_rig ~file_pages:16 () in
  Alcotest.check_raises "mmap beyond file"
    (Invalid_argument "Context.mmap: range outside file") (fun () ->
      ignore
        (in_sim (fun () ->
             Aquila.Context.enter_thread r.ctx;
             ignore (Aquila.Context.mmap r.ctx r.file ~npages:17 ()))))

let segfault_outside_mapping () =
  let r = make_rig () in
  Alcotest.check_raises "access outside region"
    (Invalid_argument "Context: access outside region") (fun () ->
      ignore
        (in_sim (fun () ->
             Aquila.Context.enter_thread r.ctx;
             let region = Aquila.Context.mmap r.ctx r.file ~npages:4 () in
             Aquila.Context.touch r.ctx region ~page:4 ~write:false)))

let resize_cache_via_hypervisor () =
  let r = make_rig ~frames:32 ~max_frames:64 () in
  ignore
    (in_sim (fun () ->
         Aquila.Context.enter_thread r.ctx;
         Aquila.Context.resize_cache r.ctx ~frames:64;
         checki "grown" 64 (Mcache.Dram_cache.frames_total (Aquila.Context.cache r.ctx));
         Aquila.Context.resize_cache r.ctx ~frames:16;
         checki "shrunk" 16 (Mcache.Dram_cache.frames_total (Aquila.Context.cache r.ctx));
         checki "resizes went through the host" 2
           (Aquila.Syscalls.forwarded_count (Aquila.Context.syscalls r.ctx))))

let ept_faults_charged_lazily () =
  let r = make_rig ~frames:32 () in
  ignore
    (in_sim (fun () ->
         Aquila.Context.enter_thread r.ctx;
         let region = Aquila.Context.mmap r.ctx r.file ~npages:8 () in
         for p = 0 to 7 do
           Aquila.Context.touch r.ctx region ~page:p ~write:false
         done;
         (* all frames live in one 2 MiB EPT mapping *)
         checki "one EPT fault" 1 (Aquila.Context.ept_faults r.ctx)))

let kmmap_has_pricier_traps () =
  (* Same fault sequence under non-root ring0 vs ring3 (kmmap): the ring3
     variant pays the bigger trap on every fault. *)
  let run domain =
    let r = make_rig ~domain () in
    let eng =
      in_sim (fun () ->
          Aquila.Context.enter_thread r.ctx;
          let region = Aquila.Context.mmap r.ctx r.file ~npages:16 () in
          for p = 0 to 15 do
            Aquila.Context.touch r.ctx region ~page:p ~write:false
          done)
    in
    Sim.Engine.now eng
  in
  let aquila = run Hw.Domain_x.Nonroot_ring0 in
  let kmmap = run Hw.Domain_x.Ring3 in
  Alcotest.(check bool) "kmmap slower" true (kmmap > aquila);
  (* the gap is 16 faults x (1287 - 642) cycles of trap difference, minus
     Aquila's one-time vmlaunch and EPT fault *)
  Alcotest.(check bool) "gap ~ trap difference" true
    (Int64.sub kmmap aquila > 3000L)

let mprotect_write_protects () =
  let r = make_rig () in
  ignore
    (in_sim (fun () ->
         Aquila.Context.enter_thread r.ctx;
         let region = Aquila.Context.mmap r.ctx r.file ~npages:4 () in
         Aquila.Context.touch r.ctx region ~page:0 ~write:true;
         let f0 = Aquila.Context.faults r.ctx in
         Aquila.Context.mprotect r.ctx region ~writable:false;
         (* a read still succeeds without a fault... *)
         Aquila.Context.touch r.ctx region ~page:0 ~write:false;
         checki "read ok" f0 (Aquila.Context.faults r.ctx);
         (* ...but the next store takes a (dirty-tracking) fault *)
         Aquila.Context.touch r.ctx region ~page:0 ~write:true;
         checki "store refaults" (f0 + 1) (Aquila.Context.faults r.ctx)))

let mremap_grows_without_copies () =
  let r = make_rig () in
  ignore
    (in_sim (fun () ->
         Aquila.Context.enter_thread r.ctx;
         let region = Aquila.Context.mmap r.ctx r.file ~npages:4 () in
         Aquila.Context.write r.ctx region ~off:10 ~src:(Bytes.of_string "keepme");
         let misses0 = Mcache.Dram_cache.misses (Aquila.Context.cache r.ctx) in
         let bigger = Aquila.Context.mremap r.ctx region ~npages:16 in
         checki "grown" 16 (Aquila.Context.region_npages bigger);
         let dst = Bytes.create 6 in
         Aquila.Context.read r.ctx bigger ~off:10 ~len:6 ~dst;
         Alcotest.(check string) "data visible through new mapping" "keepme"
           (Bytes.to_string dst);
         checki "no device refetch" misses0
           (Mcache.Dram_cache.misses (Aquila.Context.cache r.ctx))))

(* Model-based property: random page-granular writes and reads through
   Aquila (with a cache far smaller than the file, forcing evictions,
   write-backs and refetches) always agree with a plain in-memory model. *)
let data_plane_model =
  QCheck.Test.make ~name:"aquila data plane matches an in-memory model" ~count:25
    QCheck.(
      pair small_int
        (list_of_size (QCheck.Gen.int_range 1 150)
           (pair (int_bound 99) (int_bound 255))))
    (fun (seed, ops) ->
      let r = make_rig ~frames:16 ~file_pages:128 () in
      let model = Array.make 100 0 in
      ignore seed;
      let ok = ref true in
      ignore
        (in_sim (fun () ->
             Aquila.Context.enter_thread r.ctx;
             let region = Aquila.Context.mmap r.ctx r.file ~npages:100 () in
             List.iteri
               (fun i (page, v) ->
                 if i land 1 = 0 then begin
                   (* write one byte at the start of [page] *)
                   Aquila.Context.write r.ctx region ~off:(page * Hw.Defs.page_size)
                     ~src:(Bytes.make 1 (Char.chr v));
                   model.(page) <- v
                 end
                 else begin
                   let dst = Bytes.create 1 in
                   Aquila.Context.read r.ctx region
                     ~off:(page * Hw.Defs.page_size)
                     ~len:1 ~dst;
                   if Char.code (Bytes.get dst 0) <> model.(page) then ok := false
                 end)
               ops;
             (* final sweep *)
             Array.iteri
               (fun page v ->
                 let dst = Bytes.create 1 in
                 Aquila.Context.read r.ctx region ~off:(page * Hw.Defs.page_size)
                   ~len:1 ~dst;
                 if Char.code (Bytes.get dst 0) <> v then ok := false)
               model));
      !ok)

let concurrent_torture () =
  (* 8 threads hammer a 200-page file through a 24-frame cache with mixed
     reads/writes to disjoint per-thread byte slots; every thread verifies
     its own writes, and a final sweep checks global consistency. *)
  let r = make_rig ~frames:24 ~max_frames:24 ~file_pages:256 () in
  let eng = Sim.Engine.create () in
  let region = ref None in
  ignore
    (Sim.Engine.spawn eng ~core:0 (fun () ->
         Aquila.Context.enter_thread r.ctx;
         region := Some (Aquila.Context.mmap r.ctx r.file ~npages:200 ())));
  Sim.Engine.run eng;
  let expected = Array.make_matrix 8 200 (-1) in
  for t = 0 to 7 do
    let rng = Sim.Rng.create (100 + t) in
    ignore
      (Sim.Engine.spawn eng ~core:t (fun () ->
           Aquila.Context.enter_thread r.ctx;
           let reg = Option.get !region in
           for _ = 1 to 300 do
             let page = Sim.Rng.int rng 200 in
             let off = (page * Hw.Defs.page_size) + (t * 8) in
             if Sim.Rng.bool rng then begin
               let v = Sim.Rng.int rng 200 in
               Aquila.Context.write r.ctx reg ~off
                 ~src:(Bytes.make 1 (Char.chr (32 + v)));
               expected.(t).(page) <- v
             end
             else begin
               let dst = Bytes.create 1 in
               Aquila.Context.read r.ctx reg ~off ~len:1 ~dst;
               let want = expected.(t).(page) in
               let got = Char.code (Bytes.get dst 0) in
               if want >= 0 then
                 Alcotest.(check int)
                   (Printf.sprintf "thr %d page %d" t page)
                   (32 + want) got
             end
           done))
  done;
  Sim.Engine.run eng;
  (* final global verification *)
  ignore
    (Sim.Engine.spawn eng ~core:0 (fun () ->
         let reg = Option.get !region in
         for t = 0 to 7 do
           for page = 0 to 199 do
             if expected.(t).(page) >= 0 then begin
               let dst = Bytes.create 1 in
               Aquila.Context.read r.ctx reg
                 ~off:((page * Hw.Defs.page_size) + (t * 8))
                 ~len:1 ~dst;
               Alcotest.(check int)
                 (Printf.sprintf "final thr %d page %d" t page)
                 (32 + expected.(t).(page))
                 (Char.code (Bytes.get dst 0))
             end
           done
         done));
  Sim.Engine.run eng;
  Alcotest.(check bool) "heavy eviction traffic" true
    (Mcache.Dram_cache.evictions (Aquila.Context.cache r.ctx) > 100)

let simulation_is_deterministic () =
  let run () =
    let r = make_rig ~frames:24 ~max_frames:24 ~file_pages:256 () in
    let eng = Sim.Engine.create () in
    for t = 0 to 3 do
      let rng = Sim.Rng.create (7 + t) in
      ignore
        (Sim.Engine.spawn eng ~core:t (fun () ->
             Aquila.Context.enter_thread r.ctx;
             let reg = Aquila.Context.mmap r.ctx r.file ~npages:128 () in
             for _ = 1 to 200 do
               Aquila.Context.touch r.ctx reg ~page:(Sim.Rng.int rng 128)
                 ~write:(Sim.Rng.bool rng)
             done))
    done;
    Sim.Engine.run eng;
    (Sim.Engine.now eng, Aquila.Context.faults r.ctx,
     Mcache.Dram_cache.evictions (Aquila.Context.cache r.ctx))
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical replay" true (a = b)

let () =
  Alcotest.run "aquila"
    [
      ( "vma",
        [
          Alcotest.test_case "insert/lookup" `Quick vma_insert_lookup;
          Alcotest.test_case "overlap rejected" `Quick vma_rejects_overlap;
          Alcotest.test_case "remove" `Quick vma_remove;
        ] );
      ("syscalls", [ Alcotest.test_case "interception" `Quick syscall_counters ]);
      ( "context",
        [
          Alcotest.test_case "integrity across evictions" `Quick rw_roundtrip_across_evictions;
          Alcotest.test_case "hits are free" `Quick hits_are_free;
          Alcotest.test_case "dirty tracking refault" `Quick write_after_read_faults_again;
          Alcotest.test_case "munmap keeps cache" `Quick munmap_keeps_cache;
          Alcotest.test_case "msync persists" `Quick msync_persists;
          Alcotest.test_case "madvise readahead" `Quick madvise_controls_readahead;
          Alcotest.test_case "mmap bounds" `Quick mmap_bounds;
          Alcotest.test_case "segfault" `Quick segfault_outside_mapping;
          Alcotest.test_case "dynamic cache resize" `Quick resize_cache_via_hypervisor;
          Alcotest.test_case "ept lazily mapped" `Quick ept_faults_charged_lazily;
          Alcotest.test_case "kmmap trap cost" `Quick kmmap_has_pricier_traps;
          Alcotest.test_case "mprotect" `Quick mprotect_write_protects;
          Alcotest.test_case "mremap" `Quick mremap_grows_without_copies;
          QCheck_alcotest.to_alcotest data_plane_model;
          Alcotest.test_case "concurrent torture" `Quick concurrent_torture;
          Alcotest.test_case "determinism" `Quick simulation_is_deterministic;
        ] );
    ]
