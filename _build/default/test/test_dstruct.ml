(* Tests for the core data structures (lib/dstruct). *)

module Irb = Dstruct.Rbtree.Make (Int)
module Imap = Map.Make (Int)

let checki = Alcotest.(check int)

(* ---- Red-black tree ---- *)

let rb_basic () =
  let t = Irb.create () in
  Alcotest.(check bool) "empty" true (Irb.is_empty t);
  Alcotest.(check bool) "insert fresh" true (Irb.insert t 5 "five" = None);
  Alcotest.(check (option string)) "replace" (Some "five") (Irb.insert t 5 "FIVE");
  Alcotest.(check (option string)) "find" (Some "FIVE") (Irb.find t 5);
  Alcotest.(check (option string)) "miss" None (Irb.find t 6);
  checki "length" 1 (Irb.length t);
  Alcotest.(check (option string)) "remove" (Some "FIVE") (Irb.remove t 5);
  Alcotest.(check bool) "empty again" true (Irb.is_empty t)

let rb_inorder () =
  let t = Irb.create () in
  List.iter (fun k -> ignore (Irb.insert t k k)) [ 5; 1; 9; 3; 7; 2; 8 ];
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ]
    (List.map fst (Irb.to_list t));
  Alcotest.(check (option (pair int int))) "min" (Some (1, 1)) (Irb.min_binding t);
  Alcotest.(check (option (pair int int))) "pop min" (Some (1, 1)) (Irb.pop_min t);
  Alcotest.(check (option (pair int int))) "next min" (Some (2, 2)) (Irb.min_binding t);
  Alcotest.(check (option (pair int int))) "find_ge exact" (Some (5, 5)) (Irb.find_ge t 5);
  Alcotest.(check (option (pair int int))) "find_ge between" (Some (7, 7)) (Irb.find_ge t 6);
  Alcotest.(check (option (pair int int))) "find_ge beyond" None (Irb.find_ge t 10)

let rb_model =
  QCheck.Test.make ~name:"rbtree matches Map under random ops" ~count:200
    QCheck.(list (pair (int_bound 200) bool))
    (fun ops ->
      let t = Irb.create () in
      let m = ref Imap.empty in
      List.iter
        (fun (k, ins) ->
          if ins then begin
            ignore (Irb.insert t k (k * 2));
            m := Imap.add k (k * 2) !m
          end
          else begin
            ignore (Irb.remove t k);
            m := Imap.remove k !m
          end)
        ops;
      (match Irb.check_invariants t with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "invariant: %s" e);
      Irb.to_list t = Imap.bindings !m)

let rb_invariants_large () =
  let t = Irb.create () in
  let r = Sim.Rng.create 11 in
  for _ = 1 to 5000 do
    ignore (Irb.insert t (Sim.Rng.int r 2000) 0)
  done;
  for _ = 1 to 3000 do
    ignore (Irb.remove t (Sim.Rng.int r 2000))
  done;
  (match Irb.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "balanced depth" true
    (Irb.depth_estimate t <= 2 * 11 (* 2*log2(2000) *))

(* ---- Radix tree ---- *)

let radix_basic () =
  let t = Dstruct.Radix_tree.create () in
  Alcotest.(check (option int)) "empty" None (Dstruct.Radix_tree.find t 0);
  ignore (Dstruct.Radix_tree.insert t 0 10);
  ignore (Dstruct.Radix_tree.insert t 100000 20);
  Alcotest.(check (option int)) "find 0" (Some 10) (Dstruct.Radix_tree.find t 0);
  Alcotest.(check (option int)) "find big" (Some 20) (Dstruct.Radix_tree.find t 100000);
  checki "length" 2 (Dstruct.Radix_tree.length t);
  Alcotest.(check (option int)) "remove" (Some 10) (Dstruct.Radix_tree.remove t 0);
  Alcotest.(check (option int)) "gone" None (Dstruct.Radix_tree.find t 0);
  Alcotest.check_raises "negative key" (Invalid_argument "Radix_tree: negative key")
    (fun () -> ignore (Dstruct.Radix_tree.find t (-1)))

let radix_floor () =
  let t = Dstruct.Radix_tree.create () in
  List.iter (fun k -> ignore (Dstruct.Radix_tree.insert t k k)) [ 10; 64; 1000; 4096 ];
  let floor k = Option.map fst (Dstruct.Radix_tree.find_floor t k) in
  Alcotest.(check (option int)) "below all" None (floor 9);
  Alcotest.(check (option int)) "exact" (Some 10) (floor 10);
  Alcotest.(check (option int)) "between" (Some 64) (floor 999);
  Alcotest.(check (option int)) "above all" (Some 4096) (floor 100000)

let radix_model =
  QCheck.Test.make ~name:"radix matches Map (find/floor/iter)" ~count:200
    QCheck.(pair (list (int_bound 5000)) (int_bound 6000))
    (fun (keys, probe) ->
      let t = Dstruct.Radix_tree.create () in
      let m = ref Imap.empty in
      List.iter
        (fun k ->
          ignore (Dstruct.Radix_tree.insert t k (k + 1));
          m := Imap.add k (k + 1) !m)
        keys;
      let model_floor = Imap.fold (fun k v acc -> if k <= probe then Some (k, v) else acc) !m None in
      Dstruct.Radix_tree.find_floor t probe = model_floor
      && Dstruct.Radix_tree.fold (fun k v acc -> (k, v) :: acc) t [] |> List.rev
         = Imap.bindings !m
      && Dstruct.Radix_tree.find t probe = Imap.find_opt probe !m)

(* ---- Lock-free hash ---- *)

let hash_ops () =
  let t = Dstruct.Lockfree_hash.create () in
  Alcotest.(check bool) "try_insert wins" true (Dstruct.Lockfree_hash.try_insert t 1 "a");
  Alcotest.(check bool) "try_insert loses" false (Dstruct.Lockfree_hash.try_insert t 1 "b");
  Alcotest.(check (option string)) "kept first" (Some "a") (Dstruct.Lockfree_hash.find t 1);
  Alcotest.(check (option string)) "insert replaces" (Some "a")
    (Dstruct.Lockfree_hash.insert t 1 "c");
  Alcotest.(check (option string)) "removed" (Some "c") (Dstruct.Lockfree_hash.remove t 1);
  checki "empty" 0 (Dstruct.Lockfree_hash.length t);
  Alcotest.(check bool) "ops counted" true
    (Dstruct.Lockfree_hash.lookups t > 0 && Dstruct.Lockfree_hash.updates t > 0)

(* ---- Clock LRU ---- *)

let clock_prefers_unreferenced () =
  let t = Dstruct.Clock_lru.create ~nframes:4 in
  for f = 0 to 3 do
    Dstruct.Clock_lru.set_active t f true
  done;
  Dstruct.Clock_lru.touch t 0;
  Dstruct.Clock_lru.touch t 1;
  (* 2 and 3 are unreferenced: they go first *)
  Alcotest.(check (list int)) "victims" [ 2; 3 ] (Dstruct.Clock_lru.evict_candidates t 2);
  checki "active count" 2 (Dstruct.Clock_lru.active_count t)

let clock_second_sweep () =
  let t = Dstruct.Clock_lru.create ~nframes:3 in
  for f = 0 to 2 do
    Dstruct.Clock_lru.set_active t f true;
    Dstruct.Clock_lru.touch t f
  done;
  (* all referenced: the first sweep clears bits, the second takes them *)
  Alcotest.(check (list int)) "sweeps twice" [ 0; 1 ] (Dstruct.Clock_lru.evict_candidates t 2)

let clock_skips_pinned () =
  let t = Dstruct.Clock_lru.create ~nframes:3 in
  for f = 0 to 2 do
    Dstruct.Clock_lru.set_active t f true
  done;
  Dstruct.Clock_lru.set_pinned t 0 true;
  Alcotest.(check (list int)) "pinned skipped" [ 1; 2 ]
    (Dstruct.Clock_lru.evict_candidates t 2);
  Dstruct.Clock_lru.set_pinned t 0 false;
  Alcotest.(check (list int)) "unpinned eligible" [ 0 ]
    (Dstruct.Clock_lru.evict_candidates t 1)

let clock_empty_when_all_pinned () =
  let t = Dstruct.Clock_lru.create ~nframes:2 in
  Dstruct.Clock_lru.set_active t 0 true;
  Dstruct.Clock_lru.set_pinned t 0 true;
  Alcotest.(check (list int)) "nothing evictable" []
    (Dstruct.Clock_lru.evict_candidates t 1)

let () =
  Alcotest.run "dstruct"
    [
      ( "rbtree",
        [
          Alcotest.test_case "basic" `Quick rb_basic;
          Alcotest.test_case "in-order" `Quick rb_inorder;
          Alcotest.test_case "invariants large" `Quick rb_invariants_large;
          QCheck_alcotest.to_alcotest rb_model;
        ] );
      ( "radix",
        [
          Alcotest.test_case "basic" `Quick radix_basic;
          Alcotest.test_case "find_floor" `Quick radix_floor;
          QCheck_alcotest.to_alcotest radix_model;
        ] );
      ("lockfree hash", [ Alcotest.test_case "ops" `Quick hash_ops ]);
      ( "clock lru",
        [
          Alcotest.test_case "prefers unreferenced" `Quick clock_prefers_unreferenced;
          Alcotest.test_case "second sweep" `Quick clock_second_sweep;
          Alcotest.test_case "skips pinned" `Quick clock_skips_pinned;
          Alcotest.test_case "all pinned" `Quick clock_empty_when_all_pinned;
        ] );
    ]
