(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, runs the ablation benches from DESIGN.md §5, and times the
   core substrate data structures with Bechamel. *)

let () =
  Printf.printf "=== Aquila (EuroSys '21) reproduction benchmark harness ===\n";
  Printf.printf "%s\n" Experiments.Scenario.scale_note;
  Experiments.Registry.run_all ();
  Printf.printf "\n### Ablations (DESIGN.md section 5)\n%!";
  Ablations.run_all ();
  Printf.printf "\n### Sensitivity sweeps (beyond the paper's fixed points)\n%!";
  Sweeps.run_all ();
  Printf.printf "\n### Substrate microbenchmarks (Bechamel, wall-clock of the simulator's own data structures)\n%!";
  Micro_bechamel.run ()
