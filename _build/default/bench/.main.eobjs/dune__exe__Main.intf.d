bench/main.mli:
