bench/sweeps.ml: Aquila Blobstore Experiments Int64 List Mcache Printf Sim Stats
