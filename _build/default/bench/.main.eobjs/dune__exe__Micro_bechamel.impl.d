bench/micro_bechamel.ml: Analyze Aquila Bechamel Benchmark Dstruct Hashtbl Instance Int Int64 Kvstore List Measure Printf Sdevice Sim Staged Stats Test Time Toolkit Ycsb
