bench/ablations.ml: Aquila Blobstore Experiments Fun Hw Int64 Mcache Printf Sdevice Sim Stats
