bench/main.ml: Ablations Experiments Micro_bechamel Printf Sweeps
