(* CI perf-trajectory gate over the BENCH_*.json files.

   Usage:
     perf_gate BASELINE.json CURRENT.json [--threshold 0.25]
     perf_gate --selftest FILE.json

   Both bench JSONs are objects whose numeric leaves are addressable by
   dotted path ("zipf.lru.vtime_per_op", "aquila_t16.final_cycles"); a
   tiny scanner below extracts exactly those (path, number) pairs, so no
   JSON library is needed.

   Only deterministic virtual counters are gated — wall-clock throughput
   is real but noisy on shared CI runners, so it is recorded in the
   artifacts yet never failed on:

     lower-is-better: vtime_per_op, misses, evictions, wb_pages,
                      final_cycles
     higher-is-better: hit_rate
     skipped: anything else, and any key ending in ".wall"

   A counter regresses when it moves past the threshold (default 25 %) in
   its bad direction.  Keys present on only one side are warnings, not
   failures (benches evolve).  Exit codes: 0 pass, 1 regression (or
   selftest found a toothless rule), 2 usage/parse error.

   --selftest is the teeth test (same idea as faultcheck --broken): for
   every gated key in FILE it fabricates a >threshold regression and
   asserts the gate trips, and asserts FILE-vs-itself passes — proving
   the gate can actually fail before CI trusts a green result. *)

let threshold = ref 0.25

(* ---- number extraction ---- *)

exception Parse of string

let parse_numbers src =
  let n = String.length src in
  let pos = ref 0 in
  let out = ref [] in
  let fail msg = raise (Parse (Printf.sprintf "at byte %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match src.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let read_string () =
    expect '"';
    let b = Buffer.create 16 in
    while !pos < n && src.[!pos] <> '"' do
      if src.[!pos] = '\\' && !pos + 1 < n then incr pos;
      Buffer.add_char b src.[!pos];
      incr pos
    done;
    if !pos >= n then fail "unterminated string";
    incr pos;
    Buffer.contents b
  in
  let read_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match src.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub src start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let join prefix k = if prefix = "" then k else prefix ^ "." ^ k in
  let rec value prefix =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then incr pos else members prefix
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then incr pos else elements prefix 0
    | Some '"' -> ignore (read_string ())
    | Some ('t' | 'f' | 'n') ->
        while !pos < n && match src.[!pos] with 'a' .. 'z' -> true | _ -> false
        do
          incr pos
        done
    | Some _ ->
        let v = read_number () in
        out := (prefix, v) :: !out
    | None -> fail "unexpected end of input"
  and members prefix =
    skip_ws ();
    let k = read_string () in
    skip_ws ();
    expect ':';
    value (join prefix k);
    skip_ws ();
    match peek () with
    | Some ',' ->
        incr pos;
        members prefix
    | Some '}' -> incr pos
    | _ -> fail "expected , or } in object"
  and elements prefix i =
    value (join prefix (string_of_int i));
    skip_ws ();
    match peek () with
    | Some ',' ->
        incr pos;
        elements prefix (i + 1)
    | Some ']' -> incr pos
    | _ -> fail "expected , or ] in array"
  in
  value "";
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  List.rev !out

let parse_file path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "perf_gate: %s\n" msg;
      exit 2
  in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  try parse_numbers src
  with Parse msg ->
    Printf.eprintf "perf_gate: %s: %s\n" path msg;
    exit 2

(* ---- gate rules ---- *)

type dir = Lower | Higher

let leaf key =
  (* aqmetrics keys carry a {label=value,...} suffix
     ("mcache_hits{policy=clock}"); the gated leaf is the family name with
     that suffix stripped, so one rule covers every labelled series. *)
  let key =
    match String.index_opt key '{' with
    | Some i -> String.sub key 0 i
    | None -> key
  in
  match String.rindex_opt key '.' with
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)
  | None -> key

let dir_of key =
  if String.length key >= 5 && leaf key = "wall" then None
  else
    match leaf key with
    | "vtime_per_op" | "misses" | "evictions" | "wb_pages" | "final_cycles" ->
        Some Lower
    (* PDES scaling curve (BENCH_pdes.json) and engine workloads: event
       totals, cross-shard deliveries and barrier windows are exact
       functions of the schedule — more of any of them is a regression
       (events_per_sec / speedup carry ".wall" and stay advisory). *)
    | "events" | "cross_posts" | "windows" -> Some Lower
    | "hit_rate" -> Some Higher
    (* aqmetrics families (BENCH_metrics.json, labelled series).  All are
       deterministic virtual counters; engine_events_fast is deliberately
       ungated — fast-path/queued shifts are legal optimizations. *)
    | "mcache_hits" -> Some Higher
    | "mcache_misses" | "mcache_evictions" | "mcache_wb_pages"
    | "mcache_sigbus" | "hw_tlb_misses" | "hw_tlb_shootdowns"
    | "aquila_page_faults" | "engine_events" | "sdevice_reads"
    | "sdevice_writes" | "fault_injected" | "linux_cache_misses" ->
        Some Lower
    (* aqcluster failover smoke (BENCH_cluster.json): the scenario is a
       fixed schedule, so fewer acked ops — or more failovers, resync
       pages or retries — means replication or recovery got worse. *)
    | "acked_ops" -> Some Higher
    | "failovers" | "resync_pages" | "rpc_retries" -> Some Lower
    (* open-loop smoke (BENCH_openloop.json): fixed overload points, so
       the sojourn tail, the shed and SLO-violation counts and the
       completion total are exact functions of the backend's service
       path — serving fewer requests, or shedding / violating / tailing
       more, is a regression.  p50_cycles stays advisory: the median
       moves with benign scheduling shifts the tail gate already bounds. *)
    | "completions" -> Some Higher
    | "shed" | "slo_violations" | "p99_cycles" | "p999_cycles" -> Some Lower
    | _ -> None

type verdict = { failures : (string * float * float) list; checked : int }

let gate baseline current =
  let cur = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace cur k v) current;
  let failures = ref [] and checked = ref 0 in
  List.iter
    (fun (k, b) ->
      match dir_of k with
      | None -> ()
      | Some d -> (
          match Hashtbl.find_opt cur k with
          | None -> Printf.printf "warn: %s missing from current run\n" k
          | Some c ->
              incr checked;
              let bad =
                if b = 0. then (match d with Lower -> c > 0. | Higher -> false)
                else
                  match d with
                  | Lower -> c > b *. (1. +. !threshold)
                  | Higher -> c < b *. (1. -. !threshold)
              in
              if bad then failures := (k, b, c) :: !failures))
    baseline;
  { failures = List.rev !failures; checked = !checked }

let report v =
  List.iter
    (fun (k, b, c) ->
      Printf.printf "REGRESSION %-40s baseline %.4f -> current %.4f\n" k b c)
    v.failures;
  Printf.printf "perf_gate: %d counters checked, %d regressions (threshold %.0f%%)\n"
    v.checked (List.length v.failures) (100. *. !threshold)

(* ---- selftest: prove the gate has teeth ---- *)

let selftest path =
  let base = parse_numbers (let ic = open_in_bin path in
                            let s = really_input_string ic (in_channel_length ic) in
                            close_in ic; s) in
  let gated = List.filter (fun (k, _) -> dir_of k <> None) base in
  if gated = [] then begin
    Printf.printf "selftest FAIL: %s has no gated counters\n" path;
    exit 1
  end;
  let clean = gate base base in
  if clean.failures <> [] then begin
    Printf.printf "selftest FAIL: file-vs-itself reported regressions\n";
    report clean;
    exit 1
  end;
  let missed = ref [] and tested = ref 0 and zeros = ref 0 in
  List.iter
    (fun (k, v) ->
      if v = 0. then incr zeros
      else begin
        incr tested;
        let factor =
          match dir_of k with Some Lower -> 1.5 | _ -> 0.5
        in
        let perturbed =
          List.map (fun (k', v') -> if k' = k then (k', v' *. factor) else (k', v')) base
        in
        let verdict = gate base perturbed in
        if not (List.exists (fun (k', _, _) -> k' = k) verdict.failures) then
          missed := k :: !missed
      end)
    gated;
  Printf.printf
    "selftest: %d gated counters perturbed, %d zero-valued skipped, %d missed\n"
    !tested !zeros (List.length !missed);
  if !missed <> [] then begin
    List.iter (Printf.printf "selftest FAIL: gate did not trip on %s\n")
      (List.rev !missed);
    exit 1
  end;
  if !tested = 0 then begin
    Printf.printf "selftest FAIL: every gated counter was zero — nothing proven\n";
    exit 1
  end;
  Printf.printf "selftest: ok (every fabricated regression tripped the gate)\n"

(* ---- driver ---- *)

let usage () =
  prerr_endline
    "usage: perf_gate BASELINE.json CURRENT.json [--threshold F]\n\
    \       perf_gate --selftest FILE.json";
  exit 2

let () =
  let args = Array.to_list Sys.argv in
  let rec positional acc = function
    | [] -> List.rev acc
    | "--threshold" :: f :: rest -> (
        match float_of_string_opt f with
        | Some t when t > 0. ->
            threshold := t;
            positional acc rest
        | _ -> usage ())
    | a :: rest -> positional (a :: acc) rest
  in
  match positional [] (List.tl args) with
  | [ "--selftest"; path ] -> selftest path
  | [ base_path; cur_path ] ->
      let v = gate (parse_file base_path) (parse_file cur_path) in
      report v;
      if v.checked = 0 then begin
        Printf.printf "perf_gate: nothing gated — refusing to pass vacuously\n";
        exit 1
      end;
      if v.failures <> [] then exit 1
  | _ -> usage ()
