(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, runs the ablation benches from DESIGN.md §5, and times the
   core substrate data structures with Bechamel.

   --jobs N (or BENCH_JOBS=N) fans the experiments, ablations and sweeps
   out over N OCaml domains; per-job seeds and domain-local ambient state
   keep every result — and the output bytes — identical to a sequential
   run.  The Bechamel wall-clock microbenchmarks stay sequential so their
   timings are not perturbed by sibling domains. *)

(* Same flag names and spec syntax as bin/aquila_cli.exe: --fault-plan
   SPEC injects seeded device faults into every experiment, ablation and
   sweep job; --crash-at N is shorthand for adding 'crash=N' to the
   plan.  Each job builds its own plan from the spec, so injection
   composes with --jobs and the output stays byte-identical at any
   fan-out degree. *)
let fault_of_argv () =
  let plan = ref None and crash_at = ref None in
  let argv = Sys.argv in
  let value_of i flag =
    let fl = String.length flag in
    let s = argv.(i) in
    if s = flag && i + 1 < Array.length argv then Some argv.(i + 1)
    else if
      String.length s > fl + 1
      && String.sub s 0 (fl + 1) = flag ^ "="
    then Some (String.sub s (fl + 1) (String.length s - fl - 1))
    else None
  in
  for i = 1 to Array.length argv - 1 do
    (match value_of i "--fault-plan" with
    | Some s -> plan := Some s
    | None -> ());
    match value_of i "--crash-at" with
    | Some s -> crash_at := int_of_string_opt s
    | None -> ()
  done;
  let base =
    match !plan with
    | None -> Fault.Plan.default
    | Some s -> (
        match Fault.Plan.parse s with
        | Ok spec -> spec
        | Error msg ->
            Printf.eprintf "bench: --fault-plan: %s\n%!" msg;
            exit 2)
  in
  match !crash_at with
  | Some at -> Some { base with Fault.Plan.crash_at = Some at }
  | None -> if !plan = None then None else Some base

(* --policy NAME sets the ambient cache-replacement policy every Aquila
   stack picks up (ablations that pin their own policy still win). *)
let policy_of_argv () =
  let argv = Sys.argv in
  let policy = ref None in
  let value_of i flag =
    let fl = String.length flag in
    let s = argv.(i) in
    if s = flag && i + 1 < Array.length argv then Some argv.(i + 1)
    else if String.length s > fl + 1 && String.sub s 0 (fl + 1) = flag ^ "="
    then Some (String.sub s (fl + 1) (String.length s - fl - 1))
    else None
  in
  for i = 1 to Array.length argv - 1 do
    match value_of i "--policy" with
    | Some s -> (
        match Mcache.Policy.kind_of_string s with
        | Ok k -> policy := Some k
        | Error msg ->
            Printf.eprintf "bench: --policy: %s\n%!" msg;
            exit 2)
    | None -> ()
  done;
  !policy

(* --metrics-out FILE writes the merged aqmetrics snapshot of the whole
   harness run (same format rules as aquila_cli: .prom/.txt is
   Prometheus exposition, anything else flat JSON). *)
let metrics_out_of_argv () =
  let argv = Sys.argv in
  let out = ref None in
  let value_of i flag =
    let fl = String.length flag in
    let s = argv.(i) in
    if s = flag && i + 1 < Array.length argv then Some argv.(i + 1)
    else if String.length s > fl + 1 && String.sub s 0 (fl + 1) = flag ^ "="
    then Some (String.sub s (fl + 1) (String.length s - fl - 1))
    else None
  in
  for i = 1 to Array.length argv - 1 do
    match value_of i "--metrics-out" with
    | Some s -> out := Some s
    | None -> ()
  done;
  !out

let jobs_of_argv () =
  let jobs = ref 1 in
  (match Sys.getenv_opt "BENCH_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n -> jobs := n | None -> ())
  | None -> ());
  let argv = Sys.argv in
  for i = 1 to Array.length argv - 1 do
    match argv.(i) with
    | "--jobs" | "-j" when i + 1 < Array.length argv -> (
        match int_of_string_opt argv.(i + 1) with
        | Some n -> jobs := n
        | None -> ())
    | s when String.length s > 7 && String.sub s 0 7 = "--jobs=" -> (
        match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
        | Some n -> jobs := n
        | None -> ())
    | _ -> ()
  done;
  max 1 !jobs

(* --shards N splits every engine's event queue into N statically-routed
   shard queues (Sim.Engine ?shards); orthogonal to --jobs, which fans
   whole experiments out across domains. *)
let shards_of_argv () =
  let shards = ref 1 in
  (match Sys.getenv_opt "BENCH_SHARDS" with
  | Some s -> (
      match int_of_string_opt s with Some n -> shards := n | None -> ())
  | None -> ());
  let argv = Sys.argv in
  for i = 1 to Array.length argv - 1 do
    match argv.(i) with
    | "--shards" when i + 1 < Array.length argv -> (
        match int_of_string_opt argv.(i + 1) with
        | Some n -> shards := n
        | None -> ())
    | s when String.length s > 9 && String.sub s 0 9 = "--shards=" -> (
        match int_of_string_opt (String.sub s 9 (String.length s - 9)) with
        | Some n -> shards := n
        | None -> ())
    | _ -> ()
  done;
  max 1 !shards

let () =
  let jobs = jobs_of_argv () in
  let shards = shards_of_argv () in
  Sim.Engine.set_default_shards shards;
  let fault = fault_of_argv () in
  (match policy_of_argv () with
  | Some k -> Experiments.Scenario.set_policy k
  | None -> ());
  Printf.printf "=== Aquila (EuroSys '21) reproduction benchmark harness ===\n";
  Printf.printf "%s\n" Experiments.Scenario.scale_note;
  if jobs > 1 then Printf.printf "(fan-out: up to %d parallel domains)\n" jobs;
  if shards > 1 then
    Printf.printf "(engine sharding: %d event-queue shards per engine)\n" shards;
  (match Experiments.Scenario.policy () with
  | Mcache.Policy.Clock -> ()
  | k ->
      Printf.printf "(cache replacement policy: %s)\n"
        (Mcache.Policy.kind_to_string k));
  (match fault with
  | Some spec ->
      Printf.printf "(fault injection: %s)\n" (Fault.Plan.to_string spec)
  | None -> ());
  Experiments.Scenario.with_metrics ?out:(metrics_out_of_argv ()) (fun () ->
      Experiments.Registry.run_all ~jobs ?fault ();
      Printf.printf "\n### Ablations (DESIGN.md section 5)\n%!";
      Experiments.Fanout.run ~jobs ?fault Ablations.jobs;
      Printf.printf "\n### Sensitivity sweeps (beyond the paper's fixed points)\n%!";
      Experiments.Fanout.run ~jobs ?fault Sweeps.jobs);
  Printf.printf "\n### Substrate microbenchmarks (Bechamel, wall-clock of the simulator's own data structures)\n%!";
  Micro_bechamel.run ()
