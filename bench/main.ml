(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, runs the ablation benches from DESIGN.md §5, and times the
   core substrate data structures with Bechamel.

   --jobs N (or BENCH_JOBS=N) fans the experiments, ablations and sweeps
   out over N OCaml domains; per-job seeds and domain-local ambient state
   keep every result — and the output bytes — identical to a sequential
   run.  The Bechamel wall-clock microbenchmarks stay sequential so their
   timings are not perturbed by sibling domains. *)

let jobs_of_argv () =
  let jobs = ref 1 in
  (match Sys.getenv_opt "BENCH_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n -> jobs := n | None -> ())
  | None -> ());
  let argv = Sys.argv in
  for i = 1 to Array.length argv - 1 do
    match argv.(i) with
    | "--jobs" | "-j" when i + 1 < Array.length argv -> (
        match int_of_string_opt argv.(i + 1) with
        | Some n -> jobs := n
        | None -> ())
    | s when String.length s > 7 && String.sub s 0 7 = "--jobs=" -> (
        match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
        | Some n -> jobs := n
        | None -> ())
    | _ -> ()
  done;
  max 1 !jobs

let () =
  let jobs = jobs_of_argv () in
  Printf.printf "=== Aquila (EuroSys '21) reproduction benchmark harness ===\n";
  Printf.printf "%s\n" Experiments.Scenario.scale_note;
  if jobs > 1 then Printf.printf "(fan-out: up to %d parallel domains)\n" jobs;
  Experiments.Registry.run_all ~jobs ();
  Printf.printf "\n### Ablations (DESIGN.md section 5)\n%!";
  Experiments.Fanout.run ~jobs Ablations.jobs;
  Printf.printf "\n### Sensitivity sweeps (beyond the paper's fixed points)\n%!";
  Experiments.Fanout.run ~jobs Sweeps.jobs;
  Printf.printf "\n### Substrate microbenchmarks (Bechamel, wall-clock of the simulator's own data structures)\n%!";
  Micro_bechamel.run ()
