(* Cluster failover smoke bench.

   One fixed crash+failover scenario: a 3-node / 2-replica aqcluster
   serves a deterministic client loop while an aqfault plan downs node 1
   at a fixed engine event ordinal; the node recovers and resyncs, a
   final anti-entropy pass runs, and the no-lost-acks + convergence
   oracles must hold.  The scenario runs twice and the runs must agree
   byte-for-byte (events, final cycles, device digest) — the bench
   doubles as the cluster determinism smoke.

   Results land in BENCH_cluster.json for bench/perf_gate's trajectory
   gate: acked_ops is gated higher-is-better; failovers, resync_pages,
   rpc_retries, events and final_cycles lower-is-better (wall is
   recorded but never gated). *)

let ops = 300
let keyspace = 24
let crash_ordinal = 6_000
let crash_target = 1

let cfg =
  {
    Aqcluster.Cluster.default_config with
    Aqcluster.Cluster.nodes = 3;
    replicas = 2;
    node = { Aqcluster.Node.cache_frames = 32; wal_pages = 1024 };
    recovery_delay = 2_000_000;
  }

type run = {
  acked : int;
  failovers : int;
  resync_pages : int;
  retries : int;
  events : int;
  final_cycles : int64;
  digest : string;
  violations : string list;
}

let run_once () =
  let eng = Sim.Engine.create () in
  let cl = Aqcluster.Cluster.create ~cfg ~eng () in
  let plan =
    Fault.Plan.make
      {
        Fault.Plan.default with
        Fault.Plan.crash_at = Some crash_ordinal;
        node = Some crash_target;
      }
  in
  let acked_tbl : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let violations = ref [] in
  Fault.with_plan plan (fun () ->
      Aqcluster.Cluster.boot cl;
      Aqcluster.Cluster.arm_fault cl plan;
      let kv = Aqcluster.Cluster.kv cl in
      ignore
        (Sim.Engine.spawn eng ~name:"client" ~core:cfg.Aqcluster.Cluster.nodes
           (fun () ->
             for i = 0 to ops - 1 do
               let key = Printf.sprintf "key%03d" (i mod keyspace) in
               let v = Printf.sprintf "v%05d" i in
               match kv.Ycsb.Runner.kv_update key v with
               | () -> Hashtbl.replace acked_tbl key v
               | exception Aqcluster.Rpc.Unreachable _ -> ()
             done));
      Sim.Engine.run eng;
      ignore
        (Sim.Engine.spawn eng ~name:"final-resync"
           ~core:cfg.Aqcluster.Cluster.nodes (fun () ->
             ignore (Aqcluster.Cluster.resync cl)));
      Sim.Engine.run eng;
      (* no-lost-acks oracle over the drained, resynced cluster *)
      ignore
        (Sim.Engine.spawn eng ~name:"oracle" ~core:cfg.Aqcluster.Cluster.nodes
           (fun () ->
             Hashtbl.iter
               (fun key v ->
                 match kv.Ycsb.Runner.kv_read key with
                 | Some v' when String.equal v v' -> ()
                 | got ->
                     violations :=
                       Printf.sprintf "key %s: acked %S, read %s" key v
                         (match got with
                         | None -> "nothing"
                         | Some g -> Printf.sprintf "%S" g)
                       :: !violations)
               acked_tbl));
      Sim.Engine.run eng);
  List.iter
    (fun v -> violations := ("convergence: " ^ v) :: !violations)
    (Aqcluster.Cluster.convergence_violations cl);
  let st = Aqcluster.Cluster.stats cl in
  {
    acked = st.Aqcluster.Cluster.acked_writes;
    failovers = st.Aqcluster.Cluster.failovers;
    resync_pages = st.Aqcluster.Cluster.resync_pages;
    retries = Aqcluster.Cluster.rpc_retries cl;
    events = Sim.Engine.events eng;
    final_cycles = Sim.Engine.now eng;
    digest = (Aqcluster.Cluster.device_digest cl :> string);
    violations = List.rev !violations;
  }

let () =
  let t0 = Sys.time () in
  let a = run_once () in
  let wall = Sys.time () -. t0 in
  let b = run_once () in
  if a.violations <> [] then begin
    List.iter (Printf.printf "FAIL: %s\n") a.violations;
    exit 1
  end;
  if a.failovers <> 1 then begin
    Printf.printf
      "FAIL: expected exactly one failover, got %d (crash ordinal %d outside \
       the run?)\n"
      a.failovers crash_ordinal;
    exit 1
  end;
  if
    a.events <> b.events
    || a.final_cycles <> b.final_cycles
    || not (String.equal a.digest b.digest)
  then begin
    Printf.printf
      "FAIL: nondeterministic: events %d/%d, cycles %Ld/%Ld, device bytes %s\n"
      a.events b.events a.final_cycles b.final_cycles
      (if String.equal a.digest b.digest then "equal" else "differ");
    exit 1
  end;
  let oc = open_out "BENCH_cluster.json" in
  Printf.fprintf oc
    "{\n\
    \  \"cluster\": {\n\
    \    \"acked_ops\": %d,\n\
    \    \"failovers\": %d,\n\
    \    \"resync_pages\": %d,\n\
    \    \"rpc_retries\": %d,\n\
    \    \"events\": %d,\n\
    \    \"final_cycles\": %Ld,\n\
    \    \"wall\": %.6f\n\
    \  }\n\
     }\n"
    a.acked a.failovers a.resync_pages a.retries a.events a.final_cycles wall;
  close_out oc;
  Printf.printf
    "cluster smoke: %d acked ops, %d failover, %d resync pages, %d retries, \
     %d events, %Ld cycles — deterministic, oracle clean\n"
    a.acked a.failovers a.resync_pages a.retries a.events a.final_cycles;
  Printf.printf "wrote BENCH_cluster.json\n"
