(* Tracing-overhead smoke test.

   With no tracer installed every probe in the simulator reduces to one
   flag load and a conditional branch.  This bench gates that residual
   cost two ways:

   - absolute: the per-call cost of a disabled probe must stay under
     TRACE_SMOKE_MAX_NS (default 10 ns; ~4.7 ns measured) — this is the
     invariant that catches a probe-path regression;
   - relative: probe cost x probe count over the workload's wall time
     must stay under TRACE_SMOKE_MAX (default 2%).  The relative bar
     moves whenever the engine itself speeds up — the event fast path
     roughly halved the workload's wall time with the probe cost
     unchanged, which is why the default is 2% where it used to be 1%.

   Method: the workload's probe-site count E is obtained by running it
   once under a tracer (retained + dropped events); the per-call cost c
   of a disabled probe is calibrated over a 20M-iteration loop; the
   workload's wall time T is taken as the best of three untraced runs.
   The disabled-tracing overhead is then c * E / T. *)

let wall f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let workload () =
  let eng = Sim.Engine.create () in
  let stack =
    Experiments.Scenario.make_aquila ~frames:1024 ~dev:Experiments.Scenario.Pmem
      ()
  in
  Experiments.Microbench.run ~eng
    ~sys:(Experiments.Microbench.Aq stack)
    ~file_pages:4096 ~shared:true ~threads:8 ~ops_per_thread:4000 ()

let () =
  let budget =
    match Sys.getenv_opt "TRACE_SMOKE_MAX" with
    | Some s -> float_of_string s
    | None -> 0.02
  in
  let budget_ns =
    match Sys.getenv_opt "TRACE_SMOKE_MAX_NS" with
    | Some s -> float_of_string s
    | None -> 10.
  in
  ignore (workload ());
  (* count the probe sites the workload hits *)
  ignore (Trace.start ~capacity_per_core:4096 ());
  ignore (workload ());
  let tr = Option.get (Trace.stop ()) in
  let events = Trace.events_count tr + Trace.dropped tr in
  (* best-of-N on both sides of the ratio to cut scheduler noise *)
  let best = ref infinity in
  for _ = 1 to 5 do
    let _, dt = wall workload in
    if dt < !best then best := dt
  done;
  (* per-call cost of the disabled path (flag load + branch + return) *)
  let calls = 20_000_000 in
  let best_probe = ref infinity in
  for _ = 1 to 3 do
    let _, dt =
      wall (fun () ->
          for _ = 1 to calls do
            Sim.Probe.instant ~cat:"bench" "off"
          done)
    in
    if dt < !best_probe then best_probe := dt
  done;
  let per_call = !best_probe /. float_of_int calls in
  let overhead = per_call *. float_of_int events /. !best in
  Printf.printf
    "trace smoke: %d probe events, %.2f ns/disabled-probe (budget %.1f ns), \
     workload %.3f s -> overhead %.4f%% (budget %.2f%%)\n"
    events (per_call *. 1e9) budget_ns !best (overhead *. 100.)
    (budget *. 100.);
  if per_call *. 1e9 >= budget_ns then begin
    Printf.printf "FAIL: disabled-probe cost above absolute budget\n";
    exit 1
  end;
  if overhead >= budget then begin
    Printf.printf "FAIL: disabled-tracing overhead above budget\n";
    exit 1
  end;
  Printf.printf "OK\n"
