(* Bechamel wall-clock microbenchmarks of the substrate data structures —
   one Test.make per structure on the mmio common path. *)

open Bechamel
open Toolkit

module Irb = Dstruct.Rbtree.Make (Int)

let test_rbtree_insert =
  Test.make ~name:"rbtree-insert-1k"
    (Staged.stage (fun () ->
         let t = Irb.create () in
         for i = 0 to 999 do
           ignore (Irb.insert t ((i * 7919) mod 104729) i)
         done))

let test_rbtree_find =
  let t = Irb.create () in
  let () =
    for i = 0 to 9999 do
      ignore (Irb.insert t ((i * 7919) mod 104729) i)
    done
  in
  Test.make ~name:"rbtree-find"
    (Staged.stage (fun () -> ignore (Irb.find t 35225)))

let test_radix_insert =
  Test.make ~name:"radix-insert-1k"
    (Staged.stage (fun () ->
         let t = Dstruct.Radix_tree.create () in
         for i = 0 to 999 do
           ignore (Dstruct.Radix_tree.insert t (i * 37) i)
         done))

let test_radix_floor =
  let t = Dstruct.Radix_tree.create () in
  let () =
    for i = 0 to 9999 do
      ignore (Dstruct.Radix_tree.insert t (i * 11) i)
    done
  in
  Test.make ~name:"radix-find-floor"
    (Staged.stage (fun () -> ignore (Dstruct.Radix_tree.find_floor t 54321)))

let test_lockfree_hash =
  let t = Dstruct.Lockfree_hash.create () in
  let () =
    for i = 0 to 9999 do
      ignore (Dstruct.Lockfree_hash.insert t i i)
    done
  in
  Test.make ~name:"lockfree-hash-find"
    (Staged.stage (fun () -> ignore (Dstruct.Lockfree_hash.find t 4242)))

let test_clock =
  let t = Dstruct.Clock_lru.create ~nframes:4096 in
  let () =
    for i = 0 to 4095 do
      Dstruct.Clock_lru.set_active t i true
    done
  in
  Test.make ~name:"clock-evict-32"
    (Staged.stage (fun () ->
         let vs = Dstruct.Clock_lru.evict_candidates t 32 in
         List.iter (fun v -> Dstruct.Clock_lru.set_active t v true) vs))

let test_histogram =
  let h = Stats.Histogram.create () in
  Test.make ~name:"histogram-record"
    (Staged.stage (fun () -> Stats.Histogram.record h 12345L))

let test_zipfian =
  let z = Ycsb.Zipfian.zipfian (Sim.Rng.create 5) ~items:1_000_000 in
  Test.make ~name:"zipfian-next" (Staged.stage (fun () -> ignore (Ycsb.Zipfian.next z)))

let test_bloom =
  let b = Kvstore.Bloom.create ~expected_keys:10_000 in
  let () =
    for i = 0 to 9999 do
      Kvstore.Bloom.add b (string_of_int i)
    done
  in
  Test.make ~name:"bloom-mem" (Staged.stage (fun () -> ignore (Kvstore.Bloom.mem b "4242")))

let test_pqueue =
  Test.make ~name:"pqueue-push-pop-256"
    (Staged.stage (fun () ->
         let q = Sim.Pqueue.create () in
         for i = 0 to 255 do
           Sim.Pqueue.push q ~time:((i * 131) mod 997) ~seq:i i
         done;
         let rec drain () = match Sim.Pqueue.pop q with Some _ -> drain () | None -> () in
         drain ()))

let test_sim_fault =
  Test.make ~name:"sim-aquila-fault-roundtrip"
    (Staged.stage (fun () ->
         let eng = Sim.Engine.create () in
         let ctx = Aquila.Context.create (Aquila.Context.default_config ~cache_frames:64) in
         let pmem = Sdevice.Pmem.create ~capacity_bytes:1048576L () in
         let access = Sdevice.Access.dax_pmem (Aquila.Context.costs ctx) pmem in
         let file =
           Aquila.Context.attach_file ctx ~name:"f" ~access
             ~translate:(fun p -> if p < 64 then Some p else None)
             ~size_pages:64
         in
         ignore
           (Sim.Engine.spawn eng ~core:0 (fun () ->
                Aquila.Context.enter_thread ctx;
                let r = Aquila.Context.mmap ctx file ~npages:64 () in
                for p = 0 to 63 do
                  Aquila.Context.touch ctx r ~page:p ~write:false
                done));
         Sim.Engine.run eng))

let tests =
  Test.make_grouped ~name:"substrate" ~fmt:"%s %s"
    [
      test_rbtree_insert;
      test_rbtree_find;
      test_radix_insert;
      test_radix_floor;
      test_lockfree_hash;
      test_clock;
      test_histogram;
      test_zipfian;
      test_bloom;
      test_pqueue;
      test_sim_fault;
    ]

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.2) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let est =
        match Analyze.OLS.estimates result with
        | Some [ x ] -> Printf.sprintf "%.1f ns/run" x
        | _ -> "n/a"
      in
      rows := [ name; est ] :: !rows)
    results;
  Stats.Table_fmt.print_table ~title:"Substrate operation timings (host wall clock)"
    ~header:[ "operation"; "time" ]
    (List.sort compare !rows)
