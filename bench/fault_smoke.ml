(* Fault-injection-overhead smoke test.

   With no plan installed, every fault hook in the stack reduces to one
   cheap check: the engine's per-event crash hook is a field load and
   branch (cached as [None] at engine creation), and each device-I/O
   site checks [Atomic.get Fault.live_plans = 0] before touching
   anything else.  This bench gates that residual cost two ways:

   - absolute: the per-call cost of the disabled check must stay under
     FAULT_SMOKE_MAX_NS (default 10 ns) — the invariant that catches a
     hook-path regression;
   - relative: check cost x check count over the engine_perf fault
     loop's wall time must stay under FAULT_SMOKE_MAX (default 1%).

   Method, same as bench/trace_smoke: the check count is the workload's
   engine event count (every event visits the crash-hook check; the
   loop performs no device I/O, so this is the complete site count);
   the per-call cost c of the engine's disabled check — modeled
   faithfully as a match on an opaque mutable [(int -> unit) option]
   field holding [None] — is calibrated over a 50M-iteration loop; the
   wall time T is the best of five runs.  The disabled-hook overhead is
   then c * E / T.  The costlier [Fault.active ()] check (atomic load +
   domain-local lookup) guards device-I/O sites only; it is gated on
   its absolute per-call cost here and on its end-to-end cost by the
   device-heavy workloads in bench/engine_perf.

   The run doubles as the zero-probability determinism smoke: the same
   workload under an installed all-zero plan (Fault.Plan.default) must
   reproduce the no-plan event count and final virtual time exactly —
   the hooks are consulted but inject nothing and draw nothing. *)

type hook_probe = { mutable count : int; mutable hook : (int -> unit) option }

let iters =
  match Sys.getenv_opt "FAULT_SMOKE_ITERS" with
  | Some s -> ( match int_of_string_opt s with Some n -> max 1 n | None -> 1_000_000)
  | None -> 1_000_000

let wall f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

(* the engine-facing fault loop from bench/engine_perf *)
let workload () =
  let eng = Sim.Engine.create ~seed:7 () in
  ignore
    (Sim.Engine.spawn eng ~name:"faulter" (fun () ->
         let rng = Sim.Engine.rng eng in
         let buf = Sim.Costbuf.create () in
         for _ = 1 to iters do
           Sim.Costbuf.add buf "index" 160L;
           Sim.Costbuf.add buf "alloc" 90L;
           Sim.Costbuf.add buf "map" 210L;
           Sim.Costbuf.add buf "tlb" 120L;
           Sim.Costbuf.add buf "index" 60L;
           Sim.Costbuf.charge buf;
           Sim.Engine.delay ~label:"app" 300L;
           if Sim.Rng.int rng 8 = 0 then Sim.Engine.idle_wait 1200L
         done));
  Sim.Engine.run eng;
  (Sim.Engine.events eng, Sim.Engine.now eng)

let () =
  let budget =
    match Sys.getenv_opt "FAULT_SMOKE_MAX" with
    | Some s -> float_of_string s
    | None -> 0.01
  in
  let budget_ns =
    match Sys.getenv_opt "FAULT_SMOKE_MAX_NS" with
    | Some s -> float_of_string s
    | None -> 10.
  in
  (* zero-probability plan must not perturb the simulation *)
  let events, final = workload () in
  let events_p, final_p =
    Fault.with_plan (Fault.Plan.make Fault.Plan.default) workload
  in
  if events <> events_p || final <> final_p then begin
    Printf.printf
      "FAIL: all-zero fault plan perturbed the run: (%d events, %Ld cycles) \
       no-plan vs (%d events, %Ld cycles) under Plan.default\n"
      events final events_p final_p;
    exit 1
  end;
  (* best-of-N on both sides of the ratio to cut scheduler noise *)
  let best = ref infinity in
  for _ = 1 to 5 do
    let _, dt = wall workload in
    if dt < !best then best := dt
  done;
  (* Calibrate the marginal cost of each disabled check over an empty
     loop with the same trip count — the loop counter and the opaque
     barrier are not part of the hook, so they are measured once and
     subtracted. *)
  let calls = 50_000_000 in
  let probe = { count = 0; hook = None } in
  (* the site context the engine actually has: the event-counter bump on
     a hot record — measured alone, then with the hook check added, so
     the subtraction isolates the check as scheduled next to real work *)
  let base_loop () =
    for _ = 1 to calls do
      let p = Sys.opaque_identity probe in
      p.count <- p.count + 1
    done
  in
  (* the engine's per-event check: one field load and branch on a [None]
     hook, same shape as the check after each nevents bump *)
  let check_loop () =
    for _ = 1 to calls do
      let p = Sys.opaque_identity probe in
      p.count <- p.count + 1;
      match p.hook with Some f -> f p.count | None -> ()
    done
  in
  (* the device-site check: atomic load + domain-local lookup *)
  let active_loop () =
    for _ = 1 to calls do
      let p = Sys.opaque_identity probe in
      p.count <- p.count + 1;
      ignore (Sys.opaque_identity (Fault.active ()))
    done
  in
  (* Base and instrumented loops are timed back-to-back within each
     round so the difference sees the same machine state; the median
     across rounds rejects the odd descheduled round. *)
  let rounds = 5 in
  let dc = Array.make rounds 0. and da = Array.make rounds 0. in
  for r = 0 to rounds - 1 do
    let _, tb = wall base_loop in
    let _, tc = wall check_loop in
    let _, ta = wall active_loop in
    dc.(r) <- tc -. tb;
    da.(r) <- ta -. tb
  done;
  let median a =
    Array.sort compare a;
    a.(rounds / 2)
  in
  let per_call = max 0. (median dc /. float_of_int calls) in
  let per_active = max 0. (median da /. float_of_int calls) in
  let overhead = per_call *. float_of_int events /. !best in
  Printf.printf
    "fault smoke: %d hook sites (engine events), %.2f ns/disabled-check, \
     %.2f ns/Fault.active (budget %.1f ns), workload %.3f s -> overhead \
     %.4f%% (budget %.2f%%)\n"
    events (per_call *. 1e9) (per_active *. 1e9) budget_ns !best
    (overhead *. 100.) (budget *. 100.);
  if per_call *. 1e9 >= budget_ns || per_active *. 1e9 >= budget_ns then begin
    Printf.printf "FAIL: disabled-check cost above absolute budget\n";
    exit 1
  end;
  if overhead >= budget then begin
    Printf.printf "FAIL: disabled-hook overhead above budget\n";
    exit 1
  end;
  Printf.printf "OK (and Plan.default reproduced the no-plan run exactly)\n"
