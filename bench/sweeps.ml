(* Sensitivity sweeps beyond the paper's fixed configurations: how the
   Aquila-vs-Linux gap moves with cache size, and how Aquila's eviction
   batch and readahead window behave across their ranges. *)

let dataset_pages = 12800

let cache_size_sweep () =
  (* out-of-memory random reads, 16 threads, shared file; sweep the
     cache:dataset ratio *)
  let run aquila frames =
    let eng = Sim.Engine.create () in
    let sys =
      if aquila then
        Experiments.Microbench.Aq
          (Experiments.Scenario.make_aquila ~frames ~dev:Experiments.Scenario.Pmem ())
      else
        Experiments.Microbench.Lx
          (Experiments.Scenario.make_linux ~readahead:1 ~frames
             ~dev:Experiments.Scenario.Pmem ())
    in
    (Experiments.Microbench.run ~eng ~sys ~file_pages:dataset_pages ~shared:true
       ~threads:16 ~ops_per_thread:2500 ())
      .Experiments.Microbench.throughput_ops_s
  in
  let rows =
    List.map
      (fun denom ->
        let frames = dataset_pages / denom in
        let lx = run false frames and aq = run true frames in
        [
          Printf.sprintf "1/%d" denom;
          Stats.Table_fmt.ops_per_sec lx;
          Stats.Table_fmt.ops_per_sec aq;
          Stats.Table_fmt.speedup (aq /. lx);
        ])
      [ 16; 8; 4; 2 ]
  in
  Stats.Table_fmt.print_table
    ~title:
      "Sweep: cache size vs dataset (random reads, 16 threads, shared file, pmem)"
    ~header:[ "cache:dataset"; "Linux mmap"; "Aquila"; "speedup" ]
    rows

let evict_batch_sweep () =
  let run batch =
    let eng = Sim.Engine.create () in
    let sys =
      Experiments.Microbench.Aq
        (Experiments.Scenario.make_aquila
           ~tweak:(fun c -> { c with Mcache.Dram_cache.evict_batch = batch })
           ~frames:2048 ~dev:Experiments.Scenario.Pmem ())
    in
    (Experiments.Microbench.run ~eng ~sys ~file_pages:dataset_pages ~shared:true
       ~threads:16 ~ops_per_thread:2500 ~write_fraction:0.3 ())
      .Experiments.Microbench.throughput_ops_s
  in
  let rows =
    List.map
      (fun b -> [ string_of_int b; Stats.Table_fmt.ops_per_sec (run b) ])
      [ 1; 8; 32; 128; 512 ]
  in
  Stats.Table_fmt.print_table
    ~title:
      "Sweep: eviction/shootdown batch size (cache 2048 frames; too-large \
       batches degrade victim quality, too-small ones lose amortization)"
    ~header:[ "batch"; "throughput" ] rows

let readahead_sweep () =
  let run window =
    let eng = Sim.Engine.create () in
    let s =
      Experiments.Scenario.make_aquila ~frames:4096 ~dev:Experiments.Scenario.Nvme ()
    in
    let pages = 2048 in
    let ms = ref 0. in
    ignore
      (Sim.Engine.spawn eng ~core:0 (fun () ->
           Aquila.Context.enter_thread s.Experiments.Scenario.a_ctx;
           let blob =
             Blobstore.Store.create_blob s.Experiments.Scenario.a_store ~name:"s"
               ~pages ()
           in
           let f =
             Aquila.Context.attach_file s.Experiments.Scenario.a_ctx ~name:"s"
               ~access:s.Experiments.Scenario.a_access
               ~translate:(fun p ->
                 if p < pages then Some (Blobstore.Store.device_page blob p) else None)
               ~size_pages:pages
           in
           let r = Aquila.Context.mmap s.Experiments.Scenario.a_ctx f ~npages:pages () in
           let t0 = Sim.Engine.now_f () in
           (* window 0 = MADV_RANDOM; otherwise rely on the cache's
              per-fault override via a custom normal window *)
           let cache = Aquila.Context.cache s.Experiments.Scenario.a_ctx in
           ignore cache;
           (if window = 0 then
              Aquila.Context.madvise s.Experiments.Scenario.a_ctx r Aquila.Vma.Random
            else Aquila.Context.madvise s.Experiments.Scenario.a_ctx r Aquila.Vma.Sequential);
           for p = 0 to pages - 1 do
             Aquila.Context.touch s.Experiments.Scenario.a_ctx r ~page:p ~write:false
           done;
           ms := Int64.to_float (Int64.sub (Sim.Engine.now_f ()) t0) /. 2.4e6));
    Sim.Engine.run eng;
    !ms
  in
  Stats.Table_fmt.print_table
    ~title:"Sweep: readahead on a sequential NVMe scan (2048 pages)"
    ~header:[ "window"; "scan time" ]
    [
      [ "0 (MADV_RANDOM)"; Printf.sprintf "%.2f ms" (run 0) ];
      [ "32 (MADV_SEQUENTIAL)"; Printf.sprintf "%.2f ms" (run 32) ];
    ]

let jobs =
  [
    Experiments.Fanout.job ~name:"sweep-cache-size" cache_size_sweep;
    Experiments.Fanout.job ~name:"sweep-evict-batch" evict_batch_sweep;
    Experiments.Fanout.job ~name:"sweep-readahead" readahead_sweep;
  ]

let run_all () = Experiments.Fanout.run ~jobs:1 jobs
