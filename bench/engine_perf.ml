(* Engine throughput benchmark: events/sec on the DES hot path.

   Single-engine workloads:

   - a fault-heavy event loop exercising exactly the engine-facing slice
     of the Aquila fault path (costbuf accumulate + charge, labeled
     delays, occasional device idle_wait), where nearly every event is
     eligible for the delay fast path;

   - the real Aquila microbenchmark stack (page faults, evictions, I/O)
     at 1 and 16 simulated threads, where fibers contend for the virtual
     timeline and the fast path hits less often.

   Each runs with the fast path enabled and disabled ([Engine.create
   ~fastpath:false] forces every event through the queue); the ratio is
   the fast path's win.  The run doubles as the determinism smoke:
   same-seed runs must agree on event count and final virtual time with
   the fast path on, off, and across repetitions — any mismatch exits
   non-zero.  Results land in BENCH_engine.json.

   PDES scaling curve (BENCH_pdes.json): the Experiments.Pdes_bench
   fig-scale workload (32 per-core Aquila stacks + ring IPIs) on a
   Sim.Shard cluster at 1/2/4/8 shards.  Each shard count runs
   free-running twice and deterministic-merge once; all three must agree
   on events / final_cycles / cross_posts / windows (and those counters
   must match shards=1), which is what CI gates — wall-clock speedup is
   reported with ".wall" keys the perf gate skips.  Set
   ENGINE_PERF_MIN_SPEEDUP4 to enforce a floor on the 4-shard speedup
   (only meaningful on a machine with >= 4 cores; skipped with a warning
   otherwise).

   Throughput denominators count the run phase only: single-engine
   workloads time Engine.run / Microbench.run (not stack construction),
   and cluster runs use Shard stats' run_wall_s, which is stamped inside
   the cluster's barriers and so excludes Domain.spawn, per-shard
   builders, and join/teardown.  Wall-clock uses Unix.gettimeofday —
   CPU time would make parallel speedup invisible by construction. *)

let iters =
  match Sys.getenv_opt "ENGINE_PERF_ITERS" with
  | Some s -> ( match int_of_string_opt s with Some n -> max 1 n | None -> 1_000_000)
  | None -> 1_000_000

let pdes_ops =
  match Sys.getenv_opt "ENGINE_PERF_PDES_OPS" with
  | Some s -> ( match int_of_string_opt s with Some n -> max 1 n | None -> 1500)
  | None -> 1500

let sharded_ops =
  match Sys.getenv_opt "ENGINE_PERF_SHARDED_OPS" with
  | Some s -> ( match int_of_string_opt s with Some n -> max 1 n | None -> 400)
  | None -> 400

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ---- workload 1: fault-heavy event loop ---- *)

let fault_loop ~fastpath () =
  let eng = Sim.Engine.create ~seed:7 ~fastpath () in
  ignore
    (Sim.Engine.spawn eng ~name:"faulter" (fun () ->
         let rng = Sim.Engine.rng eng in
         let buf = Sim.Costbuf.create () in
         for _ = 1 to iters do
           (* the engine-facing slice of one page fault *)
           Sim.Costbuf.add buf "index" 160L;
           Sim.Costbuf.add buf "alloc" 90L;
           Sim.Costbuf.add buf "map" 210L;
           Sim.Costbuf.add buf "tlb" 120L;
           Sim.Costbuf.add buf "index" 60L;
           Sim.Costbuf.charge buf;
           Sim.Engine.delay ~label:"app" 300L;
           if Sim.Rng.int rng 8 = 0 then Sim.Engine.idle_wait 1200L
         done));
  let (), dt = wall (fun () -> Sim.Engine.run eng) in
  ((Sim.Engine.events eng, Sim.Engine.now eng), dt)

(* ---- workload 2: the real Aquila stack ---- *)

let aquila_micro ~fastpath ~threads () =
  let eng = Sim.Engine.create ~seed:42 ~fastpath () in
  let stack =
    Experiments.Scenario.make_aquila ~frames:1024 ~dev:Experiments.Scenario.Pmem
      ()
  in
  (* times the microbench run (its own engine runs included), not the
     stack construction above *)
  let _, dt =
    wall (fun () ->
        Experiments.Microbench.run ~eng
          ~sys:(Experiments.Microbench.Aq stack)
          ~file_pages:4096 ~shared:true ~threads
          ~ops_per_thread:(40_000 / threads) ~write_fraction:0.3 ())
  in
  ((Sim.Engine.events eng, Sim.Engine.now eng), dt)

(* ---- measurement ---- *)

type meas = {
  events : int;
  final : int64;
  eps_fast : float;
  eps_slow : float;
  speedup : float;
}

let failures = ref []

let check_same what (ea, ta) (eb, tb) =
  if ea <> eb || ta <> tb then
    failures :=
      Printf.sprintf "%s: (%d events, %Ld cycles) vs (%d events, %Ld cycles)"
        what ea ta eb tb
      :: !failures

let best_of n f =
  let best = ref infinity in
  let out = ref (0, 0L) in
  for _ = 1 to n do
    let r, dt = f () in
    out := r;
    if dt < !best then best := dt
  done;
  (!out, !best)

let measure name run =
  let (e1, t1), dt_fast = best_of 3 (run ~fastpath:true) in
  let (e2, t2), dt_slow = best_of 3 (run ~fastpath:false) in
  let (e3, t3), _ = best_of 1 (run ~fastpath:true) in
  check_same (name ^ " fastpath-vs-queue") (e1, t1) (e2, t2);
  check_same (name ^ " repeat-same-seed") (e1, t1) (e3, t3);
  let eps dt = float_of_int e1 /. dt in
  {
    events = e1;
    final = t1;
    eps_fast = eps dt_fast;
    eps_slow = eps dt_slow;
    speedup = eps dt_fast /. eps dt_slow;
  }

let meps x = x /. 1e6

let report name m =
  Printf.printf
    "%-24s %9d events  end %12Ld cy  %7.2f Mev/s fast  %7.2f Mev/s queued  %5.2fx\n%!"
    name m.events m.final (meps m.eps_fast) (meps m.eps_slow) m.speedup

let json_field name m =
  Printf.sprintf
    "  \"%s\": {\"events\": %d, \"final_cycles\": %Ld, \"events_per_sec\": \
     %.0f, \"events_per_sec_queued\": %.0f, \"speedup\": %.3f}"
    name m.events m.final m.eps_fast m.eps_slow m.speedup

(* ---- PDES shard-scaling curve ---- *)

type pmeas = { st : Sim.Shard.stats; eps : float }

let pdes_counters (s : Sim.Shard.stats) =
  (s.events, s.final_cycles, s.cross_posts, s.windows)

let pdes_check what a b =
  let (ea, ta, pa, wa) = pdes_counters a and (eb, tb, pb, wb) = pdes_counters b in
  if (ea, ta, pa, wa) <> (eb, tb, pb, wb) then
    failures :=
      Printf.sprintf
        "%s: (ev %d, cy %Ld, posts %d, win %d) vs (ev %d, cy %Ld, posts %d, win %d)"
        what ea ta pa wa eb tb pb wb
      :: !failures

let pdes_measure p ~shards =
  let free1 = Experiments.Pdes_bench.run ~shards ~p () in
  let free2 = Experiments.Pdes_bench.run ~shards ~p () in
  let det = Experiments.Pdes_bench.run ~deterministic:true ~shards ~p () in
  pdes_check (Printf.sprintf "pdes shards=%d repeat" shards) free1 free2;
  pdes_check (Printf.sprintf "pdes shards=%d det-vs-free" shards) free1 det;
  let best = if free2.run_wall_s < free1.run_wall_s then free2 else free1 in
  { st = best; eps = float_of_int best.events /. best.run_wall_s }

let pdes_report n m =
  Printf.printf
    "pdes %d shard(s)          %9d events  end %12Ld cy  %5d windows  %6d cross  %7.2f Mev/s\n%!"
    n m.st.events m.st.final_cycles m.st.windows m.st.cross_posts (meps m.eps)

let int_array a =
  String.concat ", " (Array.to_list (Array.map string_of_int a))

let pdes_json n m =
  Printf.sprintf
    "  \"shards%d\": {\"events\": %d, \"final_cycles\": %Ld, \"cross_posts\": \
     %d, \"windows\": %d, \"shard_events\": [%s], \"shard_drains\": [%s], \
     \"events_per_sec.wall\": %.0f}"
    n m.st.events m.st.final_cycles m.st.cross_posts m.st.windows
    (int_array m.st.shard_events) (int_array m.st.shard_drains) m.eps

(* ---- sharded experiment curve (Experiments.Sharded, fig5 shape) ----

   Same discipline as the pdes curve, on the shard-owned partitioned
   cache stack: free-running twice + deterministic once per shard count.
   At a fixed shard count EVERYTHING is deterministic, including
   cross_posts and the per-shard balance counters, so the per-count gate
   compares those too; across shard counts only the invariant signature
   (partition counters + events/final_cycles/windows) must match. *)

type smeas = { sst : Sim.Shard.stats; shub : Experiments.Shard_stack.stats; seps : float }

let sharded_sig (st : Sim.Shard.stats) ss =
  Printf.sprintf "%s ev=%d cy=%Ld win=%d"
    (Experiments.Shard_stack.stats_to_string ss)
    st.Sim.Shard.events st.Sim.Shard.final_cycles st.Sim.Shard.windows

let sharded_sig_n (st : Sim.Shard.stats) ss =
  Printf.sprintf "%s posts=%d ev=[%s] dr=[%s]" (sharded_sig st ss)
    st.Sim.Shard.cross_posts
    (int_array st.Sim.Shard.shard_events)
    (int_array st.Sim.Shard.shard_drains)

let sig_check what a b =
  if a <> b then
    failures := Printf.sprintf "%s: %s vs %s" what a b :: !failures

let sharded_measure p ~shards =
  let go ?deterministic () =
    Experiments.Sharded.run ?deterministic ~shards ~p ()
  in
  let st1, ss1 = go () in
  let st2, ss2 = go () in
  let st3, ss3 = go ~deterministic:true () in
  sig_check
    (Printf.sprintf "sharded shards=%d repeat" shards)
    (sharded_sig_n st1 ss1) (sharded_sig_n st2 ss2);
  sig_check
    (Printf.sprintf "sharded shards=%d det-vs-free" shards)
    (sharded_sig_n st1 ss1) (sharded_sig_n st3 ss3);
  let best =
    if st2.Sim.Shard.run_wall_s < st1.Sim.Shard.run_wall_s then st2 else st1
  in
  {
    sst = best;
    shub = ss1;
    seps = float_of_int best.Sim.Shard.events /. best.Sim.Shard.run_wall_s;
  }

let sharded_report n m =
  Printf.printf
    "sharded %d shard(s)       %9d events  end %12Ld cy  %5d windows  %6d cross  %7.2f Mev/s\n%!"
    n m.sst.Sim.Shard.events m.sst.Sim.Shard.final_cycles
    m.sst.Sim.Shard.windows m.sst.Sim.Shard.cross_posts (meps m.seps)

let sharded_json n m =
  Printf.sprintf
    "  \"sharded%d\": {\"events\": %d, \"final_cycles\": %Ld, \"cross_posts\": \
     %d, \"windows\": %d, \"hits\": %d, \"misses\": %d, \"shard_events\": \
     [%s], \"shard_drains\": [%s], \"events_per_sec.wall\": %.0f}"
    n m.sst.Sim.Shard.events m.sst.Sim.Shard.final_cycles
    m.sst.Sim.Shard.cross_posts m.sst.Sim.Shard.windows
    m.shub.Experiments.Shard_stack.counters.Mcache.Partition.fault_hits
    m.shub.Experiments.Shard_stack.counters.Mcache.Partition.misses
    (int_array m.sst.Sim.Shard.shard_events)
    (int_array m.sst.Sim.Shard.shard_drains)
    m.seps

let () =
  Printf.printf "=== engine_perf: DES hot-path throughput (iters=%d) ===\n%!" iters;
  let loop = measure "fault_loop" (fun ~fastpath () -> fault_loop ~fastpath ()) in
  report "fault-loop (1 fiber)" loop;
  let aq1 = measure "aquila_t1" (fun ~fastpath () -> aquila_micro ~fastpath ~threads:1 ()) in
  report "aquila stack, 1 thread" aq1;
  let aq16 = measure "aquila_t16" (fun ~fastpath () -> aquila_micro ~fastpath ~threads:16 ()) in
  report "aquila stack, 16 threads" aq16;
  Printf.printf "=== engine_perf: PDES shard scaling (ops/core=%d, cores=%d) ===\n%!"
    pdes_ops Experiments.Pdes_bench.default.cores;
  let p = { Experiments.Pdes_bench.default with ops_per_core = pdes_ops } in
  let curve = List.map (fun n -> (n, pdes_measure p ~shards:n)) [ 1; 2; 4; 8 ] in
  List.iter (fun (n, m) -> pdes_report n m) curve;
  (* the virtual-time outcome must also be invariant across shard counts
     — same workload, same schedule, different partition.  cross_posts
     legitimately varies with the partition (an intra-shard IPI at n=1
     is cross-shard at n=4), so it is gated per shard count above but
     excluded here. *)
  (match curve with
  | (_, base) :: rest ->
      List.iter
        (fun (n, m) ->
          if
            (base.st.events, base.st.final_cycles, base.st.windows)
            <> (m.st.events, m.st.final_cycles, m.st.windows)
          then
            failures :=
              Printf.sprintf
                "pdes shards=%d vs shards=1: (ev %d, cy %Ld, win %d) vs (ev \
                 %d, cy %Ld, win %d)"
                n m.st.events m.st.final_cycles m.st.windows base.st.events
                base.st.final_cycles base.st.windows
              :: !failures)
        rest
  | [] -> ());
  let speedup4 =
    let e1 = (List.assoc 1 curve).eps and e4 = (List.assoc 4 curve).eps in
    e4 /. e1
  in
  Printf.printf "pdes speedup at 4 shards: %.2fx\n%!" speedup4;
  (* the shard-owned experiment stack (Experiments.Sharded): the same
     free x2 + deterministic x1 discipline, plus the partition counters
     in the gated signature *)
  Printf.printf
    "=== engine_perf: sharded experiment scaling (ops/core=%d, cores=%d, \
     homes=%d) ===\n%!"
    sharded_ops Experiments.Sharded.fig5_params.Experiments.Sharded.cores
    Experiments.Sharded.fig5_params.Experiments.Sharded.homes;
  let sp =
    { Experiments.Sharded.fig5_params with ops_per_core = sharded_ops }
  in
  let scurve = List.map (fun n -> (n, sharded_measure sp ~shards:n)) [ 1; 2; 4; 8 ] in
  List.iter (fun (n, m) -> sharded_report n m) scurve;
  (match scurve with
  | (_, base) :: rest ->
      List.iter
        (fun (n, m) ->
          sig_check
            (Printf.sprintf "sharded shards=%d vs shards=1" n)
            (sharded_sig base.sst base.shub)
            (sharded_sig m.sst m.shub))
        rest
  | [] -> ());
  let sharded_speedup4 =
    let e1 = (List.assoc 1 scurve).seps and e4 = (List.assoc 4 scurve).seps in
    e4 /. e1
  in
  Printf.printf "sharded speedup at 4 shards: %.2fx\n%!" sharded_speedup4;
  (* >= 3x floor on 4-shard free-running, enforced per workload where
     the hardware can express it *)
  (match Sys.getenv_opt "ENGINE_PERF_MIN_SPEEDUP4" with
  | None -> ()
  | Some s ->
      let floor = try float_of_string s with _ -> 3.0 in
      let cores = Domain.recommended_domain_count () in
      if cores < 4 then
        Printf.printf
          "speedup floor skipped: %d core(s) available, need >= 4\n%!" cores
      else
        List.iter
          (fun (what, sp4) ->
            if sp4 < floor then begin
              Printf.printf
                "%s SCALING FAIL: %.2fx at 4 shards, floor %.2fx (%d cores)\n%!"
                (String.uppercase_ascii what) sp4 floor cores;
              failures :=
                Printf.sprintf "%s speedup4 %.2f < floor %.2f" what sp4 floor
                :: !failures
            end
            else
              Printf.printf "%s speedup floor ok: %.2fx >= %.2fx\n%!" what sp4
                floor)
          [ ("pdes", speedup4); ("sharded", sharded_speedup4) ]);
  let ok = !failures = [] in
  let oc = open_out "BENCH_engine.json" in
  Printf.fprintf oc "{\n  \"bench\": \"engine_perf\",\n  \"iters\": %d,\n%s,\n%s,\n%s,\n  \"determinism\": %s\n}\n"
    iters
    (json_field "fault_loop" loop)
    (json_field "aquila_t1" aq1)
    (json_field "aquila_t16" aq16)
    (if ok then "\"ok\"" else "\"FAIL\"");
  close_out oc;
  Printf.printf "wrote BENCH_engine.json\n";
  let oc = open_out "BENCH_pdes.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"pdes_scaling\",\n  \"ops_per_core\": %d,\n  \
     \"sharded_ops_per_core\": %d,\n%s,\n%s,\n  \"speedup4.wall\": %.3f,\n  \
     \"sharded_speedup4.wall\": %.3f,\n  \"determinism\": %s\n}\n"
    pdes_ops sharded_ops
    (String.concat ",\n" (List.map (fun (n, m) -> pdes_json n m) curve))
    (String.concat ",\n" (List.map (fun (n, m) -> sharded_json n m) scurve))
    speedup4 sharded_speedup4
    (if ok then "\"ok\"" else "\"FAIL\"");
  close_out oc;
  Printf.printf "wrote BENCH_pdes.json\n";
  if not ok then begin
    List.iter (Printf.printf "DETERMINISM FAIL %s\n") !failures;
    exit 1
  end;
  Printf.printf
    "determinism: ok (counters identical across fastpath, repetition, shard \
     count, and det/free mode)\n"
