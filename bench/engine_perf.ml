(* Engine throughput benchmark: events/sec on the DES hot path.

   Two workloads:

   - a fault-heavy event loop exercising exactly the engine-facing slice
     of the Aquila fault path (costbuf accumulate + charge, labeled
     delays, occasional device idle_wait), where nearly every event is
     eligible for the delay fast path;

   - the real Aquila microbenchmark stack (page faults, evictions, I/O)
     at 1 and 16 simulated threads, where fibers contend for the virtual
     timeline and the fast path hits less often.

   Each workload runs with the fast path enabled and disabled
   ([Engine.create ~fastpath:false] forces every event through the
   queue); the ratio is the fast path's win.  The run doubles as the
   determinism smoke: same-seed runs must agree on event count and final
   virtual time with the fast path on, off, and across repetitions — any
   mismatch exits non-zero.  Results land in BENCH_engine.json.

   Wall-clock uses Sys.time (CPU time), same as bench/trace_smoke. *)

let iters =
  match Sys.getenv_opt "ENGINE_PERF_ITERS" with
  | Some s -> ( match int_of_string_opt s with Some n -> max 1 n | None -> 1_000_000)
  | None -> 1_000_000

let wall f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

(* ---- workload 1: fault-heavy event loop ---- *)

let fault_loop ~fastpath () =
  let eng = Sim.Engine.create ~seed:7 ~fastpath () in
  ignore
    (Sim.Engine.spawn eng ~name:"faulter" (fun () ->
         let rng = Sim.Engine.rng eng in
         let buf = Sim.Costbuf.create () in
         for _ = 1 to iters do
           (* the engine-facing slice of one page fault *)
           Sim.Costbuf.add buf "index" 160L;
           Sim.Costbuf.add buf "alloc" 90L;
           Sim.Costbuf.add buf "map" 210L;
           Sim.Costbuf.add buf "tlb" 120L;
           Sim.Costbuf.add buf "index" 60L;
           Sim.Costbuf.charge buf;
           Sim.Engine.delay ~label:"app" 300L;
           if Sim.Rng.int rng 8 = 0 then Sim.Engine.idle_wait 1200L
         done));
  Sim.Engine.run eng;
  (Sim.Engine.events eng, Sim.Engine.now eng)

(* ---- workload 2: the real Aquila stack ---- *)

let aquila_micro ~fastpath ~threads () =
  let eng = Sim.Engine.create ~seed:42 ~fastpath () in
  let stack =
    Experiments.Scenario.make_aquila ~frames:1024 ~dev:Experiments.Scenario.Pmem
      ()
  in
  ignore
    (Experiments.Microbench.run ~eng
       ~sys:(Experiments.Microbench.Aq stack)
       ~file_pages:4096 ~shared:true ~threads ~ops_per_thread:(40_000 / threads)
       ~write_fraction:0.3 ());
  (Sim.Engine.events eng, Sim.Engine.now eng)

(* ---- measurement ---- *)

type meas = {
  events : int;
  final : int64;
  eps_fast : float;
  eps_slow : float;
  speedup : float;
}

let failures = ref []

let check_same what (ea, ta) (eb, tb) =
  if ea <> eb || ta <> tb then
    failures :=
      Printf.sprintf "%s: (%d events, %Ld cycles) vs (%d events, %Ld cycles)"
        what ea ta eb tb
      :: !failures

let best_of n f =
  let best = ref infinity in
  let out = ref (0, 0L) in
  for _ = 1 to n do
    let r, dt = wall f in
    out := r;
    if dt < !best then best := dt
  done;
  (!out, !best)

let measure name run =
  let (e1, t1), dt_fast = best_of 3 (run ~fastpath:true) in
  let (e2, t2), dt_slow = best_of 3 (run ~fastpath:false) in
  let (e3, t3), _ = best_of 1 (run ~fastpath:true) in
  check_same (name ^ " fastpath-vs-queue") (e1, t1) (e2, t2);
  check_same (name ^ " repeat-same-seed") (e1, t1) (e3, t3);
  let eps dt = float_of_int e1 /. dt in
  {
    events = e1;
    final = t1;
    eps_fast = eps dt_fast;
    eps_slow = eps dt_slow;
    speedup = eps dt_fast /. eps dt_slow;
  }

let meps x = x /. 1e6

let report name m =
  Printf.printf
    "%-24s %9d events  end %12Ld cy  %7.2f Mev/s fast  %7.2f Mev/s queued  %5.2fx\n%!"
    name m.events m.final (meps m.eps_fast) (meps m.eps_slow) m.speedup

let json_field name m =
  Printf.sprintf
    "  \"%s\": {\"events\": %d, \"final_cycles\": %Ld, \"events_per_sec\": \
     %.0f, \"events_per_sec_queued\": %.0f, \"speedup\": %.3f}"
    name m.events m.final m.eps_fast m.eps_slow m.speedup

let () =
  Printf.printf "=== engine_perf: DES hot-path throughput (iters=%d) ===\n%!" iters;
  let loop = measure "fault_loop" (fun ~fastpath () -> fault_loop ~fastpath ()) in
  report "fault-loop (1 fiber)" loop;
  let aq1 = measure "aquila_t1" (fun ~fastpath () -> aquila_micro ~fastpath ~threads:1 ()) in
  report "aquila stack, 1 thread" aq1;
  let aq16 = measure "aquila_t16" (fun ~fastpath () -> aquila_micro ~fastpath ~threads:16 ()) in
  report "aquila stack, 16 threads" aq16;
  let ok = !failures = [] in
  let oc = open_out "BENCH_engine.json" in
  Printf.fprintf oc "{\n  \"bench\": \"engine_perf\",\n  \"iters\": %d,\n%s,\n%s,\n%s,\n  \"determinism\": %s\n}\n"
    iters
    (json_field "fault_loop" loop)
    (json_field "aquila_t1" aq1)
    (json_field "aquila_t16" aq16)
    (if ok then "\"ok\"" else "\"FAIL\"");
  close_out oc;
  Printf.printf "wrote BENCH_engine.json\n";
  if not ok then begin
    List.iter (Printf.printf "DETERMINISM FAIL %s\n") !failures;
    exit 1
  end;
  Printf.printf "determinism: ok (event counts and final virtual times identical)\n"
