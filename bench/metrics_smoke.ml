(* Metrics-overhead smoke test.

   aqmetrics counters are always on — there is no disabled path to fall
   back to — so the invariant gated here is that the counters are cheap
   enough to leave on: their total cost over the fig5-style page-fault
   microbenchmark must stay under METRICS_SMOKE_MAX (default 1%) of the
   workload's wall time, with the profiler off (its probes reduce to one
   atomic load and a branch, already gated by trace_smoke's twin).

   Method, mirroring trace_smoke: the per-store cost c of a bound cell is
   calibrated over a 20M-iteration increment loop; the number of stores N
   the workload performs is estimated from its own merged snapshot
   (counters contribute their value — an overestimate for multi-unit
   add()s, which only makes the gate stricter; histograms contribute
   3 stores per observation); the wall time T is the best of five runs.
   The always-on overhead is then c * N / T.  An absolute bar
   METRICS_SMOKE_MAX_NS (default 8 ns) on c catches a hot-path
   regression even if the workload slows down in step.

   The run also re-checks snapshot determinism (two identical runs must
   serialize to identical JSON) and, with --out FILE, writes the
   workload's flat JSON snapshot for bench/perf_gate's metric-key
   trajectory gate (BENCH_metrics.json in CI). *)

let wall f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let workload () =
  let eng = Sim.Engine.create () in
  let stack =
    Experiments.Scenario.make_aquila ~frames:1024 ~dev:Experiments.Scenario.Pmem
      ()
  in
  Experiments.Microbench.run ~eng
    ~sys:(Experiments.Microbench.Aq stack)
    ~file_pages:4096 ~shared:true ~threads:8 ~ops_per_thread:4000 ()

(* Upper bound on the number of int stores behind a snapshot. *)
let stores_estimate samples =
  List.fold_left
    (fun acc (s : Metrics.Registry.sample) ->
      match s.s_kind with
      | Metrics.Registry.Counter -> acc + s.s_value
      | Metrics.Registry.Gauge -> acc + 1
      | Metrics.Registry.Histogram -> acc + (3 * s.s_count))
    0 samples

let out_of_argv () =
  let out = ref None in
  let argv = Sys.argv in
  for i = 1 to Array.length argv - 1 do
    if argv.(i) = "--out" && i + 1 < Array.length argv then
      out := Some argv.(i + 1)
  done;
  !out

let () =
  let budget =
    match Sys.getenv_opt "METRICS_SMOKE_MAX" with
    | Some s -> float_of_string s
    | None -> 0.01
  in
  let budget_ns =
    match Sys.getenv_opt "METRICS_SMOKE_MAX_NS" with
    | Some s -> float_of_string s
    | None -> 8.
  in
  ignore (workload ());
  (* store count and reference snapshot for one workload run *)
  Metrics.Registry.reset ();
  ignore (workload ());
  let samples = Metrics.Registry.snapshot () in
  let stores = stores_estimate samples in
  let json1 = Metrics.Export.json samples in
  (* same-seed determinism: a second run must serialize identically *)
  Metrics.Registry.reset ();
  ignore (workload ());
  let json2 = Metrics.Export.json (Metrics.Registry.snapshot ()) in
  if json1 <> json2 then begin
    Printf.printf "FAIL: metrics snapshot differs between identical runs\n";
    exit 1
  end;
  (match out_of_argv () with
  | Some path ->
      Metrics.Export.to_file path json1;
      Printf.printf "metrics smoke: snapshot -> %s\n" path
  | None -> ());
  (* best-of-N wall time of the (always-instrumented) workload *)
  let best = ref infinity in
  for _ = 1 to 5 do
    let _, dt = wall workload in
    if dt < !best then best := dt
  done;
  (* per-store cost of a bound cell (registered after the snapshot
     above, so it never appears in BENCH_metrics.json); the empty-loop
     baseline is subtracted so the loop counter's own cost is not
     charged to the store *)
  let cell =
    Metrics.Registry.counter ~help:"calibration loop" "metrics_smoke_calib"
  in
  let calls = 20_000_000 in
  let best_store = ref infinity and best_empty = ref infinity in
  for _ = 1 to 3 do
    let _, dt =
      wall (fun () ->
          for _ = 1 to calls do
            Metrics.Registry.incr cell
          done)
    in
    if dt < !best_store then best_store := dt;
    let _, dt0 =
      wall (fun () ->
          for i = 1 to calls do
            ignore (Sys.opaque_identity i)
          done)
    in
    if dt0 < !best_empty then best_empty := dt0
  done;
  let per_call =
    Float.max 0. (!best_store -. !best_empty) /. float_of_int calls
  in
  let overhead = per_call *. float_of_int stores /. !best in
  Printf.printf
    "metrics smoke: ~%d stores, %.2f ns/store (budget %.1f ns), workload \
     %.3f s -> overhead %.4f%% (budget %.2f%%)\n"
    stores (per_call *. 1e9) budget_ns !best (overhead *. 100.)
    (budget *. 100.);
  if per_call *. 1e9 >= budget_ns then begin
    Printf.printf "FAIL: per-store cost above absolute budget\n";
    exit 1
  end;
  if overhead >= budget then begin
    Printf.printf "FAIL: always-on metrics overhead above budget\n";
    exit 1
  end;
  Printf.printf "OK\n"
