(* Open-loop load smoke bench.

   Three fixed overload points — linux mmap at 400k ops/s, Aquila at
   3.2M ops/s (past its knee), and the replicated cluster at 400k ops/s
   — each driven by the seeded Poisson injector with a 512-deep
   admission queue and a 100k-cycle sojourn SLO.  Every point saturates
   its backend, so the shed and SLO-violation counters are solidly
   nonzero and the tail percentiles sit on the queueing plateau: exact,
   deterministic functions of the service path.

   The whole battery runs twice and must agree byte-for-byte (the bench
   doubles as the open-loop determinism smoke; CI additionally runs the
   binary twice and cmps stdout, filtering '#'-prefixed wall lines).

   Results land in BENCH_openloop.json for bench/perf_gate's trajectory
   gate: completions is gated higher-is-better; shed, slo_violations,
   p99_cycles, p999_cycles, events and final_cycles lower-is-better
   (p50_cycles and wall are recorded but never gated). *)

let slo_cycles = 100_000

let points =
  [
    (Experiments.Openloop.Linux, 4e5);
    (Experiments.Openloop.Aquila, 3.2e6);
    (Experiments.Openloop.Cluster, 4e5);
  ]

type snap = {
  name : string;
  arrivals : int;
  completions : int;
  shed : int;
  slo_violations : int;
  p50 : int64;
  p99 : int64;
  p999 : int64;
  events : int;
  final_cycles : int64;
}

let run_battery () =
  let params = { Experiments.Openloop.default_params with slo_cycles } in
  List.map
    (fun (kind, rate) ->
      let pt = Experiments.Openloop.run_point params kind ~rate in
      let r = pt.Experiments.Openloop.p_res in
      let pc p = Stats.Histogram.percentile r.Loadgen.sojourn p in
      {
        name = Experiments.Openloop.kind_name kind;
        arrivals = r.Loadgen.arrivals;
        completions = r.Loadgen.completions;
        shed = Loadgen.shed r;
        slo_violations = r.Loadgen.slo_violations;
        p50 = pc 50.;
        p99 = pc 99.;
        p999 = pc 99.9;
        events = pt.Experiments.Openloop.p_events;
        final_cycles = pt.Experiments.Openloop.p_final;
      })
    points

let () =
  let t0 = Sys.time () in
  let a = run_battery () in
  let wall = Sys.time () -. t0 in
  let b = run_battery () in
  if a <> b then begin
    Printf.printf "FAIL: nondeterministic: repeat run disagrees\n";
    List.iter2
      (fun x y ->
        if x <> y then
          Printf.printf
            "  %s: events %d/%d, final cycles %Ld/%Ld, completions %d/%d\n"
            x.name x.events y.events x.final_cycles y.final_cycles
            x.completions y.completions)
      a b;
    exit 1
  end;
  (* overload sanity: a zero here means the point no longer saturates and
     the Lower-gated counters would go toothless *)
  List.iter
    (fun s ->
      if s.completions = 0 || s.shed = 0 || s.slo_violations = 0 then begin
        Printf.printf
          "FAIL: %s not saturated (completions %d, shed %d, slo %d) — \
           retune the smoke's rate\n"
          s.name s.completions s.shed s.slo_violations;
        exit 1
      end)
    a;
  let oc = open_out "BENCH_openloop.json" in
  Printf.fprintf oc "{\n  \"openloop\": {\n";
  List.iteri
    (fun i s ->
      Printf.fprintf oc
        "    %S: {\n\
        \      \"arrivals\": %d,\n\
        \      \"completions\": %d,\n\
        \      \"shed\": %d,\n\
        \      \"slo_violations\": %d,\n\
        \      \"p50_cycles\": %Ld,\n\
        \      \"p99_cycles\": %Ld,\n\
        \      \"p999_cycles\": %Ld,\n\
        \      \"events\": %d,\n\
        \      \"final_cycles\": %Ld\n\
        \    },\n"
        s.name s.arrivals s.completions s.shed s.slo_violations s.p50 s.p99
        s.p999 s.events s.final_cycles;
      ignore i)
    a;
  Printf.fprintf oc "    \"wall\": %.6f\n  }\n}\n" wall;
  close_out oc;
  List.iter
    (fun s ->
      Printf.printf
        "openloop smoke %-7s %d arrivals, %d done, %d shed, %d slo \
         violations, p99 %Ld cycles, %d events\n"
        s.name s.arrivals s.completions s.shed s.slo_violations s.p99 s.events)
    a;
  Printf.printf "# wall %.3fs\n" wall;
  Printf.printf "wrote BENCH_openloop.json — deterministic across repeat runs\n"
