(* Ablation benches for the design choices DESIGN.md §5 calls out. *)

let dataset_pages = 25600
let frames = 2048
let threads = 16

let micro ~tweak ~title_row =
  let eng = Sim.Engine.create () in
  let sys =
    Experiments.Microbench.Aq
      (Experiments.Scenario.make_aquila ~tweak ~frames ~dev:Experiments.Scenario.Pmem ())
  in
  let r =
    Experiments.Microbench.run ~eng ~sys ~file_pages:dataset_pages ~shared:true
      ~threads ~ops_per_thread:3000 ~write_fraction:0.3 ()
  in
  [
    title_row;
    Stats.Table_fmt.ops_per_sec r.Experiments.Microbench.throughput_ops_s;
    string_of_int r.Experiments.Microbench.evictions;
    Printf.sprintf "%d" (Hw.Ipi.shootdowns_sent ());
  ]

let tlb_and_batching () =
  Hw.Ipi.reset_counters ();
  let base = micro ~tweak:Fun.id ~title_row:"default (batched, vmexit-send IPI)" in
  Hw.Ipi.reset_counters ();
  let posted =
    micro
      ~tweak:(fun c -> { c with Mcache.Dram_cache.ipi_mode = Hw.Ipi.Posted })
      ~title_row:"posted IPIs (no send-side vmexit)"
  in
  Hw.Ipi.reset_counters ();
  let unbatched =
    micro
      ~tweak:(fun c -> { c with Mcache.Dram_cache.evict_batch = 1 })
      ~title_row:"per-page eviction + shootdown (batch=1)"
  in
  Hw.Ipi.reset_counters ();
  let no_freelist_batch =
    micro
      ~tweak:(fun c ->
        { c with Mcache.Dram_cache.move_batch = 1; core_queue_limit = 1 })
      ~title_row:"freelist without batching (move=1)"
  in
  Stats.Table_fmt.print_table
    ~title:
      "Ablation: TLB shootdown and batching (microbenchmark, 16 threads, \
       out-of-memory, 30% writes)"
    ~header:[ "configuration"; "throughput"; "evictions"; "shootdown batches" ]
    [ base; posted; unbatched; no_freelist_batch ]

let memcpy () =
  let run simd =
    let eng = Sim.Engine.create () in
    let stack =
      Experiments.Scenario.make_aquila_access ~frames:4096
        ~access:(fun costs _ ->
          Sdevice.Access.dax_pmem costs ~simd (Sdevice.Pmem.create ()))
        ()
    in
    let sys = Experiments.Microbench.Aq stack in
    let r =
      Experiments.Microbench.run ~eng ~sys ~file_pages:3000 ~shared:true ~threads:1
        ~ops_per_thread:3000 ~pattern:Experiments.Microbench.Permutation ()
    in
    Int64.to_float r.Experiments.Microbench.elapsed_cycles
    /. float_of_int (max 1 r.Experiments.Microbench.faults)
  in
  let simd = run true and scalar = run false in
  Stats.Table_fmt.print_table
    ~title:"Ablation: AVX2 streaming memcpy vs scalar (DAX-pmem fault cost)"
    ~header:[ "copy"; "cycles/fault"; "" ]
    [
      [ "AVX2 + FPU save/restore"; Stats.Table_fmt.kcycles simd; "" ];
      [ "scalar (kernel-style)"; Stats.Table_fmt.kcycles scalar; "" ];
    ];
  Sim.Sink.printf "paper: 1200 vs 2400 cycles for the 4KB copy itself (2x)\n"

let readahead () =
  (* sequential scan over a mapped file on NVMe, with and without the
     madvise(SEQUENTIAL) readahead window *)
  let run advice =
    let eng = Sim.Engine.create () in
    let s = Experiments.Scenario.make_aquila ~frames:4096 ~dev:Experiments.Scenario.Nvme () in
    let pages = 3000 in
    let cycles = ref 0L in
    ignore
      (Sim.Engine.spawn eng ~core:0 (fun () ->
           Aquila.Context.enter_thread s.Experiments.Scenario.a_ctx;
           let blob =
             Blobstore.Store.create_blob s.Experiments.Scenario.a_store ~name:"seq"
               ~pages ()
           in
           let f =
             Aquila.Context.attach_file s.Experiments.Scenario.a_ctx ~name:"seq"
               ~access:s.Experiments.Scenario.a_access
               ~translate:(fun p ->
                 if p < pages then Some (Blobstore.Store.device_page blob p) else None)
               ~size_pages:pages
           in
           let r = Aquila.Context.mmap s.Experiments.Scenario.a_ctx f ~npages:pages () in
           Aquila.Context.madvise s.Experiments.Scenario.a_ctx r advice;
           let t0 = Sim.Engine.now_f () in
           for p = 0 to pages - 1 do
             Aquila.Context.touch s.Experiments.Scenario.a_ctx r ~page:p ~write:false
           done;
           cycles := Int64.sub (Sim.Engine.now_f ()) t0));
    Sim.Engine.run eng;
    Int64.to_float !cycles /. 2.4e6
  in
  let norm = run Aquila.Vma.Random and seq = run Aquila.Vma.Sequential in
  Stats.Table_fmt.print_table
    ~title:"Ablation: madvise-driven readahead, sequential scan of 3000 pages (NVMe)"
    ~header:[ "advice"; "scan time"; "" ]
    [
      [ "MADV_RANDOM (no readahead)"; Printf.sprintf "%.2f ms" norm; "" ];
      [ "MADV_SEQUENTIAL (32-page window)"; Printf.sprintf "%.2f ms" seq; "" ];
    ]

(* Extension beyond the paper (its Section 3.3 future work): io_uring as
   the device-access method for the mmio miss path. *)
let uring () =
  let cost access_of =
    let eng = Sim.Engine.create () in
    let stack = Experiments.Scenario.make_aquila_access ~frames:4096 ~access:access_of () in
    let sys = Experiments.Microbench.Aq stack in
    let r =
      Experiments.Microbench.run ~eng ~sys ~file_pages:3000 ~shared:true ~threads:1
        ~ops_per_thread:3000 ~pattern:Experiments.Microbench.Permutation ()
    in
    Int64.to_float r.Experiments.Microbench.elapsed_cycles
    /. float_of_int (max 1 r.Experiments.Microbench.faults)
  in
  let spdk = cost (fun c _ -> Sdevice.Access.spdk_nvme c (Sdevice.Nvme.create ())) in
  let uring =
    cost (fun c _ ->
        Sdevice.Access.uring_nvme c ~entry:Sdevice.Access.From_guest
          (Sdevice.Nvme.create ()))
  in
  let host =
    cost (fun c _ ->
        Sdevice.Access.host_nvme c ~entry:Sdevice.Access.From_guest
          (Sdevice.Nvme.create ()))
  in
  Stats.Table_fmt.print_table
    ~title:
      "Extension: io_uring as the miss-path access method (NVMe, cycles/fault;        paper future work)"
    ~header:[ "method"; "cycles/fault"; "vs SPDK" ]
    [
      [ "SPDK (kernel bypass)"; Stats.Table_fmt.kcycles spdk; "1.00x" ];
      [ "io_uring (batched syscalls)"; Stats.Table_fmt.kcycles uring;
        Stats.Table_fmt.speedup (uring /. spdk) ];
      [ "sync host I/O (vmcall each)"; Stats.Table_fmt.kcycles host;
        Stats.Table_fmt.speedup (host /. spdk) ];
    ]

(* Exposed as fan-out jobs so bench/main can spread them over domains;
   each job is self-contained (tlb_and_batching resets the domain-local
   IPI counters itself). *)
let jobs =
  [
    Experiments.Fanout.job ~name:"ablation-policy"
      Experiments.Policy_ablation.run;
    Experiments.Fanout.job ~name:"ablation-tlb-batching" tlb_and_batching;
    Experiments.Fanout.job ~name:"ablation-memcpy" memcpy;
    Experiments.Fanout.job ~name:"ablation-readahead" readahead;
    Experiments.Fanout.job ~name:"ablation-uring" uring;
  ]

let run_all () = Experiments.Fanout.run ~jobs:1 jobs
