(* Replacement-policy ablation bench: sweeps every cache policy over the
   fig5-style zipfian workload and the scan-heavy anti-LRU workload, prints
   the table and writes BENCH_mcache.json for the CI perf-trajectory gate
   (bench/perf_gate.ml compares it against the previous run's artifact).

   Like engine_perf, the run doubles as a determinism smoke: a repeated
   sweep must agree on every virtual counter (ops, hits, misses,
   evictions, write-back pages, virtual time per op, engine events) —
   only wall-clock may differ.  Any mismatch exits non-zero. *)

let ops_per_thread =
  match Sys.getenv_opt "MCACHE_BENCH_OPS" with
  | Some s -> (
      match int_of_string_opt s with Some n -> max 100 n | None -> 4000)
  | None -> 4000

let det_key (r : Experiments.Policy_ablation.row) =
  ( Experiments.Policy_ablation.workload_name r.workload,
    Mcache.Policy.kind_to_string r.policy,
    r.ops,
    r.hits,
    r.misses,
    r.evictions,
    r.wb_pages,
    r.vtime_per_op,
    r.events )

let () =
  Printf.printf
    "=== mcache_bench: replacement-policy ablation (ops/thread=%d) ===\n%!"
    ops_per_thread;
  let rows = Experiments.Policy_ablation.sweep ~ops_per_thread () in
  Experiments.Policy_ablation.print_rows rows;
  let rows2 = Experiments.Policy_ablation.sweep ~ops_per_thread () in
  let ok =
    List.length rows = List.length rows2
    && List.for_all2 (fun a b -> det_key a = det_key b) rows rows2
  in
  let oc = open_out "BENCH_mcache.json" in
  output_string oc (Experiments.Policy_ablation.json_string rows);
  close_out oc;
  Printf.printf "wrote BENCH_mcache.json\n";
  if not ok then begin
    Printf.printf "DETERMINISM FAIL: repeated sweep diverged on virtual counters\n";
    exit 1
  end;
  Printf.printf "determinism: ok (repeated sweep identical on virtual counters)\n"
